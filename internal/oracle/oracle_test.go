package oracle

import (
	"context"
	"errors"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
)

// indepLoop builds four independent integer adds on live-in registers:
// ResMII = ceil(4 / (1 INT x 4 clusters)) = 1, no recurrences, so the
// optimal II is 1.
func indepLoop() *ir.Loop {
	b := ir.NewBuilder("indep4")
	for i := 0; i < 4; i++ {
		b.Arith("", ir.KindAdd, b.Reg())
	}
	return b.Loop()
}

// recurLoop builds a two-op loop-carried recurrence (a = f(b); b = g(a)
// from the previous iteration): cycle latency 2 over distance 1, so
// RecMII = 2 and the optimal II is 2.
func recurLoop() *ir.Loop {
	b := ir.NewBuilder("recur2")
	x := b.Arith("f", ir.KindAdd, b.Reg())
	y := b.Arith("g", ir.KindAdd, x)
	loop := b.Loop()
	// Feed g's value back into f across the iteration boundary.
	loop.Ops[0].Srcs = []ir.Reg{y}
	loop.Renumber()
	if err := loop.Validate(); err != nil {
		panic(err)
	}
	return loop
}

// chainLoop builds load -> add -> store where the store may alias the
// load. The conservative store->load flow dependence at distance 1 closes
// a cycle of latency 3 (load 1, add 1, memory serialization 1), so
// RecMII = 3 dominates the chain resource bound ceil(2 / 1 MEM) = 2 and
// the optimal II is 3. The accesses stride one full interleave period, so
// every access homes in cluster 0 and profiling is deterministic.
func chainLoop() *ir.Loop {
	b := ir.NewBuilder("chain3")
	b.Symbol("a", 0x10000, 1<<20)
	b.Symbol("p", 0x90000, 1<<20, "a")
	v := b.Load("ld", ir.AddrExpr{Base: "a", Stride: 16, Size: 4})
	s := b.Arith("add", ir.KindAdd, v)
	b.Store("st", ir.AddrExpr{Base: "p", Stride: 16, Size: 4}, s)
	return b.Loop()
}

// knownOptimal are the hand-built instances with provably optimal IIs.
var knownOptimal = []struct {
	name   string
	build  func() *ir.Loop
	policy core.Policy
	wantII int
}{
	{"indep4/FREE", indepLoop, core.PolicyFree, 1},
	{"recur2/FREE", recurLoop, core.PolicyFree, 2},
	{"chain3/MDC", chainLoop, core.PolicyMDC, 3},
}

func planFor(t *testing.T, loop *ir.Loop, pol core.Policy, cfg arch.Config) *core.Plan {
	t.Helper()
	plan, err := core.Prepare(loop, pol, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestOracleClosesKnownOptimal(t *testing.T) {
	cfg := arch.Default()
	for _, tc := range knownOptimal {
		t.Run(tc.name, func(t *testing.T) {
			plan := planFor(t, tc.build(), tc.policy, cfg)
			res, err := Solve(context.Background(), plan, Options{Arch: cfg})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if !res.Closed {
				t.Fatalf("not closed: II=%d lower bound=%d after %d nodes", res.II, res.LowerBound, res.Nodes)
			}
			if res.II != tc.wantII {
				t.Errorf("II = %d, want %d", res.II, tc.wantII)
			}
			if err := sched.Validate(res.Schedule); err != nil {
				t.Errorf("invalid schedule: %v\n%s", err, res.Schedule)
			}
		})
	}
}

// TestOracleNotWorseThanHeuristics is the optimality property: on every
// instance the oracle closes, its II is a true optimum, so no registered
// heuristic may beat it — and the oracle must be at least as good.
func TestOracleNotWorseThanHeuristics(t *testing.T) {
	cfg := arch.Default()
	loops := []struct {
		name   string
		build  func() *ir.Loop
		policy core.Policy
	}{
		{"indep4/FREE", indepLoop, core.PolicyFree},
		{"recur2/FREE", recurLoop, core.PolicyFree},
		{"chain3/FREE", chainLoop, core.PolicyFree},
		{"chain3/MDC", chainLoop, core.PolicyMDC},
		{"chain3/DDGT", chainLoop, core.PolicyDDGT},
		{"recur2/MDC", recurLoop, core.PolicyMDC},
	}
	for _, tc := range loops {
		t.Run(tc.name, func(t *testing.T) {
			loop := tc.build()
			plan := planFor(t, loop, tc.policy, cfg)
			res, err := Solve(context.Background(), plan, Options{Arch: cfg})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if !res.Closed {
				t.Skipf("oracle did not close (II=%d, bound=%d)", res.II, res.LowerBound)
			}
			if err := sched.Validate(res.Schedule); err != nil {
				t.Fatalf("invalid oracle schedule: %v", err)
			}
			prof := profiler.Run(loop, cfg)
			for _, name := range sched.Names() {
				if name == sched.NameOracle {
					continue
				}
				hsc, err := sched.RunScheduler(context.Background(), name, plan,
					sched.Options{Arch: cfg, Profile: prof})
				if err != nil {
					continue // a heuristic may legitimately fail where the oracle succeeds
				}
				if res.II > hsc.II {
					t.Errorf("oracle II %d worse than %s II %d", res.II, name, hsc.II)
				}
			}
		})
	}
}

func TestOracleBudgetExhaustion(t *testing.T) {
	cfg := arch.Default()
	plan := planFor(t, chainLoop(), core.PolicyMDC, cfg)
	res, err := Solve(context.Background(), plan, Options{Arch: cfg, NodeBudget: 2})
	if err == nil {
		t.Fatalf("Solve succeeded within 2 nodes; want budget exhaustion (II=%d)", res.II)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("error %v does not wrap ErrBudget", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
	if be.Bound < 1 {
		t.Errorf("budget error carries bound %d, want >= 1", be.Bound)
	}
	if be.Nodes < 1 {
		t.Errorf("budget error reports %d nodes", be.Nodes)
	}
	if res == nil || res.LowerBound != be.Bound {
		t.Errorf("result lower bound does not match budget error bound")
	}
}

func TestOracleCancellation(t *testing.T) {
	cfg := arch.Default()
	plan := planFor(t, chainLoop(), core.PolicyMDC, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, plan, Options{Arch: cfg}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOracleRegistered(t *testing.T) {
	s, err := sched.Get(sched.NameOracle)
	if err != nil {
		t.Fatalf("oracle not registered: %v", err)
	}
	cfg := arch.Default()
	plan := planFor(t, indepLoop(), core.PolicyFree, cfg)
	sc, err := s.Schedule(context.Background(), plan, sched.Options{Arch: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if sc.II != 1 {
		t.Errorf("II = %d, want 1", sc.II)
	}
	if err := sched.Validate(sc); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
}
