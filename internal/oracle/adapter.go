package oracle

import (
	"context"

	"vliwcache/internal/core"
	"vliwcache/internal/sched"
)

// Scheduler adapts the exact solver to the sched.Scheduler interface.
// Importing this package is what registers "oracle" in the scheduler
// registry (database/sql-driver style): the experiments package imports
// it, so every binary built on experiments can resolve the name.
type Scheduler struct {
	// NodeBudget overrides the search budget (default DefaultNodeBudget).
	NodeBudget int64
}

// Name returns the registry name "oracle".
func (Scheduler) Name() string { return sched.NameOracle }

// Schedule solves the plan exactly. MaxII carries over from the sched
// options when set; the heuristic-specific Budget field does not (the
// oracle's budget is in search nodes, not placement attempts per II).
// Budget exhaustion returns a *BudgetError even when a non-optimal
// schedule was found — a portfolio treats that as this member failing,
// and a direct caller who wants the inexact schedule uses Solve.
func (o Scheduler) Schedule(ctx context.Context, plan *core.Plan, opts sched.Options) (*sched.Schedule, error) {
	res, err := Solve(ctx, plan, Options{
		Arch:       opts.Arch,
		MaxII:      opts.MaxII,
		NodeBudget: o.NodeBudget,
	})
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

func init() {
	sched.MustRegister(Scheduler{})
}
