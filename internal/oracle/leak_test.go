package oracle

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/sched"
)

// tinyOracleOnce registers a budget-starved oracle under a test-only name
// so a portfolio can race a member that is guaranteed to exhaust its
// budget. Registration is global and once-per-process.
var tinyOracleOnce sync.Once

func tinyOracleName(t *testing.T) string {
	t.Helper()
	tinyOracleOnce.Do(func() {
		sched.MustRegister(namedTiny{})
	})
	return "oracle-tiny-budget"
}

type namedTiny struct{}

func (namedTiny) Name() string { return "oracle-tiny-budget" }

func (namedTiny) Schedule(ctx context.Context, plan *core.Plan, opts sched.Options) (*sched.Schedule, error) {
	return Scheduler{NodeBudget: 2}.Schedule(ctx, plan, opts)
}

// TestPortfolioOracleBudgetExhaustionNoLeak: a portfolio race in which the
// oracle member dies on budget exhaustion must still drain every race
// goroutine once the surviving heuristic reports.
func TestPortfolioOracleBudgetExhaustionNoLeak(t *testing.T) {
	cfg := arch.Default()
	plan := planFor(t, chainLoop(), core.PolicyMDC, cfg)
	p, err := sched.NewPortfolio(tinyOracleName(t), sched.NameMinComs)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		sc, winner, err := p.ScheduleBest(context.Background(), plan, sched.Options{Arch: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if winner != sched.NameMinComs || sc == nil {
			t.Fatalf("winner = %q, want %s (the budget-starved oracle must lose)", winner, sched.NameMinComs)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after portfolio races: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
