GO ?= go

.PHONY: all build check vet test race bench paperbench chaos fuzz-smoke

all: build

# check is the CI gate: vet plus the full test suite under the race
# detector (the parallel experiment engine must stay race-free), the
# chaos/mutation property suites, and a replay of the checked-in fuzz
# corpora.
check: vet race chaos fuzz-smoke

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection property suites at fixed seeds under the
# race detector: 1000+ seeded perturbed simulations with zero coherence
# violations, oracle liveness (unprotected FREE must trip the checker),
# byte-identical fault logs per seed, and the schedule-mutation scoreboard
# (every mutant class applied and killed by Validate).
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Mutation|InjectorDeterminism' ./internal/fault/

# fuzz-smoke replays the checked-in corpora and then fuzzes each target
# briefly. Native Go fuzzing supports one fuzz target per invocation.
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/sched/ ./internal/ddg/
	$(GO) test -fuzz=FuzzValidate -fuzztime=10s -run '^$$' ./internal/sched/
	$(GO) test -fuzz=FuzzBuildDDG -fuzztime=10s -run '^$$' ./internal/ddg/

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Quick full-grid regeneration through the parallel engine.
paperbench:
	$(GO) run ./cmd/paperbench -maxiters 2000 -parallel 0 -v

# Quick chaos-mode grid: seeded fault injection + coherence audit with
# graceful degradation (exit 1 if any cell rendered n/a).
paperbench-chaos:
	$(GO) run ./cmd/paperbench -maxiters 2000 -parallel 0 -chaos -seed 1 -v
