GO ?= go

.PHONY: all build check vet test race bench paperbench

all: build

build:
	$(GO) build ./...

# check is the CI gate: vet plus the full test suite under the race
# detector (the parallel experiment engine must stay race-free).
check: vet race

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Quick full-grid regeneration through the parallel engine.
paperbench:
	$(GO) run ./cmd/paperbench -maxiters 2000 -parallel 0 -v
