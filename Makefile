GO ?= go

.PHONY: all build check vet test race bench paperbench chaos fuzz-smoke obs

all: build

# check is the CI gate: vet plus the full test suite under the race
# detector (the parallel experiment engine must stay race-free), the
# chaos/mutation property suites, a replay of the checked-in fuzz
# corpora, and the observability reconciliation + overhead guard.
check: vet race chaos fuzz-smoke obs

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection property suites at fixed seeds under the
# race detector: 1000+ seeded perturbed simulations with zero coherence
# violations, oracle liveness (unprotected FREE must trip the checker),
# byte-identical fault logs per seed, and the schedule-mutation scoreboard
# (every mutant class applied and killed by Validate).
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Mutation|InjectorDeterminism' ./internal/fault/

# fuzz-smoke replays the checked-in corpora and then fuzzes each target
# briefly. Native Go fuzzing supports one fuzz target per invocation.
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/sched/ ./internal/ddg/
	$(GO) test -fuzz=FuzzValidate -fuzztime=10s -run '^$$' ./internal/sched/
	$(GO) test -fuzz=FuzzBuildDDG -fuzztime=10s -run '^$$' ./internal/ddg/

# obs verifies the observability layer: the cycle-level event stream
# reconciles exactly with the aggregate Stats (per-class access counts,
# summed stall cycles), traces are byte-identical per fault seed, and the
# nil-tracer hot path stays within the no-overhead budget (default 2%,
# override with OBS_GUARD_PCT=0.05). The guard skips with a diagnostic on
# machines too noisy to resolve the budget; the cross-commit
# BenchmarkSimulator comparison is the authoritative regression check.
obs:
	$(GO) test -count=1 -run 'TestTrace' .
	OBS_GUARD=1 $(GO) test -count=1 -run 'TestObsOverheadGuard' -v .

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Quick full-grid regeneration through the parallel engine.
paperbench:
	$(GO) run ./cmd/paperbench -maxiters 2000 -parallel 0 -v

# Quick chaos-mode grid: seeded fault injection + coherence audit with
# graceful degradation (exit 1 if any cell rendered n/a).
paperbench-chaos:
	$(GO) run ./cmd/paperbench -maxiters 2000 -parallel 0 -chaos -seed 1 -v
