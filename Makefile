GO ?= go

.PHONY: all build check vet lint test race bench bench-baseline bench-check paperbench chaos fuzz-smoke obs fast-smoke check-deprecated oracle-smoke serve-smoke mc-smoke sweep-smoke cluster-smoke bench-serve-check bench-serve-baseline

all: build

# check is the CI gate: vet plus the full test suite under the race
# detector (the parallel experiment engine must stay race-free), the
# chaos/mutation property suites, a replay of the checked-in fuzz
# corpora, the observability reconciliation + overhead guard, the
# perf-regression gate against the committed baseline, the
# deprecated-symbol gate, the serving-layer smoke test, and the
# model-checker smoke (exhaustive coherence verification of the canonical
# bounded configurations).
check: vet race chaos fuzz-smoke obs fast-smoke bench-check check-deprecated oracle-smoke serve-smoke cluster-smoke bench-serve-check mc-smoke sweep-smoke

vet:
	$(GO) vet ./...

# lint runs staticcheck when it is installed and is a no-op otherwise, so
# `make lint` works in minimal containers. vet already flags misformatted
# "// Deprecated:" markers via its comment checks either way.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go vet still runs in 'make check')"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# chaos runs the fault-injection property suites at fixed seeds under the
# race detector: 1000+ seeded perturbed simulations with zero coherence
# violations, oracle liveness (unprotected FREE must trip the checker),
# byte-identical fault logs per seed, and the schedule-mutation scoreboard
# (every mutant class applied and killed by Validate).
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Mutation|InjectorDeterminism' ./internal/fault/

# fuzz-smoke replays the checked-in corpora and then fuzzes each target
# briefly. Native Go fuzzing supports one fuzz target per invocation.
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/sched/ ./internal/ddg/ ./internal/mc/ ./internal/apiv1/ ./internal/loopgen/
	$(GO) test -fuzz=FuzzValidate -fuzztime=10s -run '^$$' ./internal/sched/
	$(GO) test -fuzz=FuzzBuildDDG -fuzztime=10s -run '^$$' ./internal/ddg/
	$(GO) test -fuzz=FuzzMCConfig -fuzztime=10s -run '^$$' ./internal/mc/
	$(GO) test -fuzz=FuzzArchConfig -fuzztime=10s -run '^$$' ./internal/apiv1/
	$(GO) test -fuzz=FuzzLoopgenCorpus -fuzztime=10s -run '^$$' ./internal/loopgen/

# obs verifies the observability layer: the cycle-level event stream
# reconciles exactly with the aggregate Stats (per-class access counts,
# summed stall cycles), traces are byte-identical per fault seed, and the
# nil-tracer hot path stays within the no-overhead budget (default 2%,
# override with OBS_GUARD_PCT=0.05). The guard skips with a diagnostic on
# machines too noisy to resolve the budget; the cross-commit
# BenchmarkSimulator comparison is the authoritative regression check.
obs:
	$(GO) test -count=1 -run 'TestTrace' .
	OBS_GUARD=1 $(GO) test -count=1 -run 'TestObsOverheadGuard' -v .

# fast-smoke is the steady-state fast path gate: the slow-vs-fast
# byte-diff over every benchmark × policy cell plus trip-extended
# extrapolating runs (TestFastPathIdenticalStats / ExtrapolatesExtended /
# BatchGridIdentity), and the loud-fallback contract — a chaos-seeded
# fault injector, tracers, and coherence audits must fall back to
# cycle-by-cycle simulation with identical bytes and a counted reason
# (TestFastPathFallbackLoud), never extrapolate around a fault.
fast-smoke:
	$(GO) test -count=1 -run 'TestFastPathIdenticalStats|TestFastPathExtrapolatesExtended|TestFastPathFallbackLoud' ./internal/sim/
	$(GO) test -count=1 -run 'TestBatchGridIdentity' ./internal/perfbench/

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/perfbench/

# bench-baseline rewrites the committed perf baseline (BENCH_sim.json) from
# fresh measurements on this machine. Run it on a quiet host and commit the
# result; bench-check compares against it.
bench-baseline:
	REFRESH_BENCH=1 $(GO) test -count=1 -run TestBenchBaselineRefresh -v ./internal/perfbench/

# bench-check is the perf-regression gate: the steady-state benchmarks must
# not allocate (always fails on an alloc regression — allocation counts are
# deterministic), and ns/op must stay within 10% of the committed baseline
# (skipped with a diagnostic when the host is too noisy to resolve 10%;
# NOISY_HOST=1 forces that skip, mirroring the OBS_GUARD pattern).
bench-check:
	$(GO) test -count=1 -run 'TestSteadyStateAllocs|TestBaselineFileValid|TestCompare' ./internal/perfbench/
	BENCH_CHECK=1 $(GO) test -count=1 -run TestBenchRegressionGate -v ./internal/perfbench/

# check-deprecated fails when new code uses the deprecated pre-v1
# spellings (ExecOptions literals, Suite.CellCtx, sim.RunCtx call
# sites, the Order enum spelling of scheduler selection — use registry
# names like "prefclus-slack" instead — and apiv1.ParseConfig, whose
# replacement is NamedConfig plus structured Arch overlays). The shims
# themselves live in deprecated.go / apiv1.go and stay covered by their
# tests; the Order machinery itself lives in internal/sched; everything
# else must use the functional options, the *Context spellings and
# registry names.
check-deprecated:
	@matches=$$(grep -rnE 'ExecOptions\{|\.CellCtx\(|\bRunCtx\(|\bOrderHeight\b|\bOrderSlack\b|\bParseConfig\(|\bValidateSchedulers\(' \
		--include='*.go' . \
		| grep -v -e '^\./deprecated\.go:' -e '^\./deprecated_test\.go:' \
		          -e '/sim/sim\.go:' -e '/experiments/suite\.go:' \
		          -e '^\./internal/sched/' \
		          -e '^\./internal/apiv1/apiv1\.go:' -e '^\./internal/apiv1/arch_test\.go:' \
		          -e '^\./internal/apiv1/deprecated\.go:' -e '^\./internal/apiv1/deprecated_test\.go:' \
		|| true); \
	if [ -n "$$matches" ]; then \
		echo "check-deprecated: migrate these call sites off the deprecated spellings:"; \
		echo "$$matches"; \
		exit 1; \
	fi; \
	echo "check-deprecated: clean"

# oracle-smoke pins the exact scheduler end to end: the three hand-built
# known-optimal loops must close at their proven IIs, and one
# budget-capped real benchmark loop must degrade to a deterministic
# bound-only result. Output is diffed against a committed golden;
# refresh with:
#   go test -run TestOracleSmoke ./internal/oracle/ -update
oracle-smoke:
	$(GO) test -count=1 -run TestOracleSmoke -v ./internal/oracle/

# sweep-smoke regenerates the canonical design-space sweep (the
# archspace grid over every benchmark plus the seed-1 corpus) and
# byte-diffs it against the committed SWEEP_report.json/.csv. Refresh
# the artifacts with:
#   go test -run TestSweepSmoke ./internal/experiments/ -update
sweep-smoke:
	$(GO) test -count=1 -run TestSweepSmoke -v ./internal/experiments/

# serve-smoke is the paperserved end-to-end smoke: build the binary,
# start it on an ephemeral port, POST the committed golden request, diff
# the response against the committed golden bytes, and verify a clean
# SIGTERM drain. Refresh the golden with:
#   go test -run TestServeSmoke ./cmd/paperserved/ -update
serve-smoke:
	$(GO) test -count=1 -run TestServeSmoke -v ./cmd/paperserved/

# cluster-smoke is the distributed end-to-end smoke: build the binary,
# start a router and two peer-aware workers on ephemeral ports, run the
# full suite through the async job API (POST /v1/jobs), and byte-diff
# the artifact against the committed single-node golden — sharding must
# be invisible in the bytes. All three nodes must drain cleanly on
# SIGTERM. Refresh the golden with:
#   go test -run TestClusterSmoke ./cmd/paperserved/ -update
cluster-smoke:
	$(GO) test -count=1 -run TestClusterSmoke -v ./cmd/paperserved/

# bench-serve-check validates the committed serving baseline
# (BENCH_serve.json): schema, internal consistency, ordered percentiles,
# and the presence of both canonical scenarios. Live re-measurement is
# cmd/paperload against a running server; refresh with
# `make bench-serve-baseline`.
bench-serve-check:
	$(GO) test -count=1 -run 'TestCommittedServeBaseline|TestBaselineRoundTripAndCompare|TestLoadRejectsBadBaselines' ./internal/loadgen/

# bench-serve-baseline rewrites BENCH_serve.json from a fresh paperload
# run against a locally started paperserved. Run on a quiet host and
# commit the result.
bench-serve-baseline:
	@set -e; \
	tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/paperserved ./cmd/paperserved; \
	$(GO) build -o $$tmp/paperload ./cmd/paperload; \
	$$tmp/paperserved -addr 127.0.0.1:0 -portfile $$tmp/port -parallel 2 & \
	srv=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/port ] && break; sleep 0.1; done; \
	$$tmp/paperload -base http://$$(cat $$tmp/port) -rate 150 -duration 6s -workers 4 -out BENCH_serve.json; \
	kill $$srv; wait $$srv 2>/dev/null || true; \
	rm -rf $$tmp; \
	echo "bench-serve-baseline: wrote BENCH_serve.json"

# mc-smoke is the model-checker gate: every canonical bounded
# configuration must verify clean with exactly the golden-pinned state and
# transition counts (a coverage regression — fewer states explored — fails
# as loudly as a violation), the checked-in PR 2 counterexample must still
# be rediscovered as a minimal trace when the fix is toggled off, and a
# deliberately starved budget must degrade to the typed *BudgetError with
# the explored frontier intact. `paperbench -mc` prints the same table.
mc-smoke:
	$(GO) test -count=1 -run 'TestMCSmoke|TestPR2Counterexample|TestBudgetExhaustion' -v ./internal/mc/
	$(GO) run ./cmd/paperbench -mc

# Quick full-grid regeneration through the parallel engine.
paperbench:
	$(GO) run ./cmd/paperbench -maxiters 2000 -parallel 0 -v

# Quick chaos-mode grid: seeded fault injection + coherence audit with
# graceful degradation (exit 1 if any cell rendered n/a).
paperbench-chaos:
	$(GO) run ./cmd/paperbench -maxiters 2000 -parallel 0 -chaos -seed 1 -v
