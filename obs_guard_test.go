package vliwcache

import (
	"fmt"
	"math"
	"os"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/obs"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// noopTracer is the cheapest possible enabled sink: every emission site
// fires, every event struct is built, and the result is discarded.
type noopTracer struct{}

func (noopTracer) Emit(obs.Event) {}

// TestObsOverheadGuard enforces the observability layer's no-overhead
// contract on the simulator hot path (`make obs` sets OBS_GUARD=1).
//
// The disabled path (nil tracer) does a strict subset of the enabled
// path's work — the same nil checks, none of the event construction — so
// bounding the *enabled* noop-sink run against the disabled run bounds
// the disabled path's own overhead from above. The guard passes when the
// best of several attempts shows noop-enabled within the budget (default
// 2%, OBS_GUARD_PCT overrides) plus that attempt's measured A/A noise.
// On a machine too noisy to measure 2% at all, the guard skips with a
// diagnostic rather than reporting a spurious regression; the
// cross-commit check of the untouched BenchmarkSimulator is the
// authoritative disabled-overhead comparison against the previous seed.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("OBS_GUARD") == "" {
		t.Skip("set OBS_GUARD=1 (or run `make obs`) to run the overhead guard")
	}
	budget := 0.02
	if s := os.Getenv("OBS_GUARD_PCT"); s != "" {
		if _, err := fmt.Sscanf(s, "%f", &budget); err != nil {
			t.Fatalf("bad OBS_GUARD_PCT %q: %v", s, err)
		}
	}

	sc := guardSchedule(t)
	opts := sim.Options{MaxIterations: 120, MaxEntries: 1}
	measure := func(tr obs.Tracer) float64 {
		o := opts
		o.Tracer = tr
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sc, o); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}

	measure(nil) // warm caches before the first counted attempt

	const attempts = 5
	bestRatio, bestNoise := math.Inf(1), math.Inf(1)
	minDis, minEn, maxDis := math.Inf(1), math.Inf(1), 0.0
	for i := 0; i < attempts; i++ {
		d1 := measure(nil)
		en := measure(noopTracer{})
		d2 := measure(nil)
		disabled := (d1 + d2) / 2
		noise := math.Abs(d1-d2) / disabled
		ratio := en / disabled
		t.Logf("attempt %d: disabled %.0f ns/op, noop-enabled %.0f ns/op, ratio %.3f, A/A noise %.1f%%",
			i+1, disabled, en, ratio, 100*noise)
		if noise < bestNoise {
			bestNoise = noise
		}
		if ratio < bestRatio {
			bestRatio = ratio
		}
		// Host drift *during* the enabled sample inflates the paired ratio
		// while leaving the d1/d2 bracket clean, so also compare each
		// path's minimum across attempts: a slow sample can only inflate a
		// measurement, making the minima the truest observations of either
		// path's cost.
		minDis, minEn = math.Min(minDis, math.Min(d1, d2)), math.Min(minEn, en)
		maxDis = math.Max(maxDis, math.Max(d1, d2))
		if r := minEn / minDis; r < bestRatio {
			bestRatio = r
		}
		if bestRatio <= 1+budget+bestNoise {
			return // within budget; no need to keep burning benchmark time
		}
	}
	// Two noise signals: the A/A bracket inside one attempt, and the
	// disabled path disagreeing with itself across attempts — the second
	// catches slow host drift that a clean bracket hides.
	spread := (maxDis - minDis) / minDis
	if bestNoise > budget || spread > budget {
		t.Skipf("machine too noisy to resolve a %.0f%% budget (best A/A noise %.1f%%, "+
			"disabled-path spread %.1f%% across attempts); "+
			"rely on the cross-commit BenchmarkSimulator comparison",
			100*budget, 100*bestNoise, 100*spread)
	}
	t.Errorf("noop-enabled tracing costs %.1f%% over disabled (budget %.0f%% + %.1f%% noise); "+
		"the nil-tracer path can no longer be zero-overhead",
		100*(bestRatio-1), 100*budget, 100*bestNoise)
}

// guardSchedule builds the benchmark substrate once: the first gsmdec
// loop under MDC+PrefClus, the same hot path BenchmarkSimulator times.
func guardSchedule(tb testing.TB) *sched.Schedule {
	tb.Helper()
	loop := traceLoop(tb)
	cfg := arch.Default()
	plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
	if err != nil {
		tb.Fatal(err)
	}
	prof := profiler.Run(loop, cfg)
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.PrefClus, Profile: prof})
	if err != nil {
		tb.Fatal(err)
	}
	return sc
}

// BenchmarkSimulatorTraced times the simulator with a live counting sink,
// making the enabled-path cost visible in benchmark history next to the
// untouched disabled-path BenchmarkSimulator.
func BenchmarkSimulatorTraced(b *testing.B) {
	sc := guardSchedule(b)
	opts := sim.Options{MaxIterations: 300, MaxEntries: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := opts
		o.Tracer = obs.NewCount()
		if _, err := sim.Run(sc, o); err != nil {
			b.Fatal(err)
		}
	}
}
