package vliwcache_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"vliwcache"
)

// ExampleExecute compiles and simulates a small loop under the MDC
// coherence policy.
func ExampleExecute() {
	b := vliwcache.NewBuilder("scale")
	b.Symbol("v", 0x10000, 1<<20)
	b.Trip(1000, 1)
	x := b.Load("ld", vliwcache.AddrExpr{Base: "v", Stride: 16, Size: 4})
	y := b.Arith("mul", vliwcache.KindMul, x)
	b.Store("st", vliwcache.AddrExpr{Base: "v", Offset: -16, Stride: 16, Size: 4}, y)

	res, err := vliwcache.Execute(b.Loop(),
		vliwcache.WithPolicy(vliwcache.PolicyMDC),
		vliwcache.WithHeuristic(vliwcache.PrefClus),
		vliwcache.WithSimOptions(vliwcache.SimOptions{CheckCoherence: true}))
	if err != nil {
		panic(err)
	}
	fmt.Println("policy:", res.Plan.Policy)
	fmt.Println("violations:", res.Stats.Violations)
	fmt.Println("accesses:", res.Stats.TotalAccesses())
	// Output:
	// policy: MDC
	// violations: 0
	// accesses: 2000
}

// ExampleNewSuite computes experiment cells concurrently on the parallel
// engine: the grid fans out over a bounded worker pool, identical cells
// are computed once (single-flight), and cancellation propagates through
// the pipeline.
func ExampleNewSuite() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	suite := vliwcache.NewSuite(vliwcache.DefaultConfig(),
		vliwcache.WithParallelism(4), // 0 = one worker per core, 1 = serial
		vliwcache.WithSimOptions(vliwcache.SimOptions{MaxIterations: 100}))

	cell, err := suite.CellContext(ctx, "epicdec", vliwcache.Variant{
		Policy:    vliwcache.PolicyDDGT,
		Heuristic: vliwcache.PrefClus,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("loops:", len(cell.Loops))
	m := suite.Metrics()
	fmt.Println("computed:", m.Computed, "cache hits:", m.CacheHits)
	// Output:
	// loops: 2
	// computed: 1 cache hits: 0
}

// ExampleSimulateContext drives the pipeline stage by stage — prepare,
// profile, schedule — and then simulates the schedule with a cancelable
// context (the canonical context-first simulation entry point).
func ExampleSimulateContext() {
	b := vliwcache.NewBuilder("scale")
	b.Symbol("v", 0x10000, 1<<20)
	b.Trip(1000, 1)
	x := b.Load("ld", vliwcache.AddrExpr{Base: "v", Stride: 16, Size: 4})
	y := b.Arith("mul", vliwcache.KindMul, x)
	b.Store("st", vliwcache.AddrExpr{Base: "v", Offset: -16, Stride: 16, Size: 4}, y)
	loop := b.Loop()

	cfg := vliwcache.DefaultConfig()
	plan, err := vliwcache.Prepare(loop, vliwcache.PolicyMDC, cfg.NumClusters)
	if err != nil {
		panic(err)
	}
	sc, err := vliwcache.ModuloSchedule(plan, vliwcache.ScheduleOptions{
		Arch:      cfg,
		Heuristic: vliwcache.PrefClus,
		Profile:   vliwcache.ProfileLoop(loop, cfg),
	})
	if err != nil {
		panic(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := vliwcache.SimulateContext(ctx, sc, vliwcache.SimOptions{CheckCoherence: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("violations:", st.Violations)
	fmt.Println("accesses:", st.TotalAccesses())
	// Output:
	// violations: 0
	// accesses: 2000
}

// ExampleExecuteHybrid compiles a loop under both MDC and DDGT and keeps
// the faster result (the per-loop hybrid of §6).
func ExampleExecuteHybrid() {
	b := vliwcache.NewBuilder("hybrid")
	b.Symbol("v", 0x10000, 1<<20)
	b.Trip(500, 1)
	x := b.Load("ld", vliwcache.AddrExpr{Base: "v", Stride: 8, Size: 4})
	y := b.Arith("add", vliwcache.KindAdd, x)
	b.Store("st", vliwcache.AddrExpr{Base: "v", Offset: -8, Stride: 8, Size: 4}, y)

	res, err := vliwcache.ExecuteHybrid(b.Loop(),
		vliwcache.WithSimOptions(vliwcache.SimOptions{CheckCoherence: true}))
	if err != nil {
		panic(err)
	}
	fmt.Println("violations:", res.Stats.Violations)
	fmt.Println("scheduled:", res.Schedule.II > 0)
	// Output:
	// violations: 0
	// scheduled: true
}

// ExampleNewTraceCount attaches a counting sink to a simulation: every
// cycle-level event is tallied by kind with no storage cost, and the
// stream reconciles with the aggregate statistics.
func ExampleNewTraceCount() {
	b := vliwcache.NewBuilder("traced")
	b.Symbol("v", 0x10000, 1<<20)
	b.Trip(1000, 1)
	x := b.Load("ld", vliwcache.AddrExpr{Base: "v", Stride: 16, Size: 4})
	y := b.Arith("mul", vliwcache.KindMul, x)
	b.Store("st", vliwcache.AddrExpr{Base: "v", Offset: -16, Stride: 16, Size: 4}, y)

	count := vliwcache.NewTraceCount()
	res, err := vliwcache.Execute(b.Loop(),
		vliwcache.WithPolicy(vliwcache.PolicyMDC),
		vliwcache.WithSimOptions(vliwcache.SimOptions{Tracer: count}))
	if err != nil {
		panic(err)
	}
	fmt.Println("events match stats:", count.N[vliwcache.EventAccess] == res.Stats.TotalAccesses())
	// Output:
	// events match stats: true
}

// ExampleWithMachinePool routes a suite's simulations through a pool of
// reusable machines: after the first loop run, the simulator's steady
// state stops allocating, and pool traffic is visible in Metrics.
func ExampleWithMachinePool() {
	suite := vliwcache.NewSuite(vliwcache.DefaultConfig(),
		vliwcache.WithParallelism(1),
		vliwcache.WithMachinePool(1),
		vliwcache.WithSimOptions(vliwcache.SimOptions{MaxIterations: 100}))

	_, err := suite.CellContext(context.Background(), "epicdec", vliwcache.Variant{
		Policy:    vliwcache.PolicyDDGT,
		Heuristic: vliwcache.PrefClus,
	})
	if err != nil {
		panic(err)
	}
	m := suite.Metrics()
	fmt.Println("pool runs:", m.PoolRuns, "reuses:", m.PoolReuses)
	// Output:
	// pool runs: 2 reuses: 1
}

// ExampleLoadBenchBaseline reads the committed performance baseline and
// checks a hypothetical re-measurement against it.
func ExampleLoadBenchBaseline() {
	base, err := vliwcache.LoadBenchBaseline("BENCH_sim.json")
	if err != nil {
		panic(err)
	}
	fmt.Println("benchmarks recorded:", len(base.Benchmarks))
	fmt.Println("steady state allocs:", base.Benchmarks["RunnerSteadyState"].AllocsPerOp)

	measured := *base // pretend re-measurement: identical metrics
	regs := vliwcache.CompareBenchBaselines(base, &measured, 0.10)
	fmt.Println("regressions:", len(regs))
	// Output:
	// benchmarks recorded: 7
	// steady state allocs: 0
	// regressions: 0
}

// ExampleChains analyzes a loop's memory dependent chains (§3.2).
func ExampleChains() {
	b := vliwcache.NewBuilder("chain")
	b.Symbol("c", 0x1000, 1<<16)
	b.Symbol("t", 0x9000, 1<<16)
	v := b.Load("ld", vliwcache.AddrExpr{Base: "c", Offset: -16, Stride: 16, Size: 4})
	b.Store("st", vliwcache.AddrExpr{Base: "c", Stride: 16, Size: 4}, v)
	b.Load("free", vliwcache.AddrExpr{Base: "t", Stride: 16, Size: 4})

	g, err := vliwcache.BuildDDG(b.Loop())
	if err != nil {
		panic(err)
	}
	chains, _ := vliwcache.Chains(g)
	st := vliwcache.AnalyzeChains(g)
	fmt.Println("chains:", len(chains))
	fmt.Printf("CMR: %.2f\n", st.CMR())
	// Output:
	// chains: 1
	// CMR: 0.67
}

// ExampleTransform applies the DDGT transformations (§3.3) and reports
// what they produced.
func ExampleTransform() {
	b := vliwcache.NewBuilder("ddgt")
	b.Symbol("c", 0x1000, 1<<16)
	// The load reads one element ahead of the store's walk: a memory anti
	// dependence at distance 1.
	v := b.Load("ld", vliwcache.AddrExpr{Base: "c", Offset: 16, Stride: 16, Size: 4})
	w := b.Arith("use", vliwcache.KindAdd, v)
	b.Store("st", vliwcache.AddrExpr{Base: "c", Stride: 16, Size: 4}, w)

	g, err := vliwcache.BuildDDG(b.Loop())
	if err != nil {
		panic(err)
	}
	plan, err := vliwcache.Transform(g, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println("replicated stores:", len(plan.ReplicaGroups))
	fmt.Println("ops after transform:", len(plan.Loop.Ops))
	// The MA dependence is replicated to all four store instances before
	// conversion, so four edges are eliminated.
	fmt.Println("MA dependences eliminated:", plan.RemovedMA)
	// Output:
	// replicated stores: 1
	// ops after transform: 6
	// MA dependences eliminated: 4
}

// ExampleNewServer starts the paperserved HTTP service on a loopback
// listener, schedules one loop over the wire, demonstrates the
// content-addressed result cache, and drains the server.
func ExampleNewServer() {
	srv := vliwcache.NewServer(
		vliwcache.WithServerParallelism(2),
		vliwcache.WithCacheBytes(1<<20),
		vliwcache.WithQueueDepth(8),
		vliwcache.WithDrainTimeout(5*time.Second),
	)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(l)

	loop := `{"name":"scale","trip":100,"symbols":[{"name":"v","base":65536,"size":1048576}],` +
		`"ops":[{"name":"ld","kind":"load","dst":0,"addr":{"base":"v","stride":8,"size":8}},` +
		`{"name":"mul","kind":"mul","dst":1,"srcs":[0]},` +
		`{"name":"st","kind":"store","srcs":[1],"addr":{"base":"v","stride":8,"size":8}}]}`
	body := `{"loop":` + loop + `,"policy":"mdc","maxIterations":10}`
	url := "http://" + l.Addr().String() + "/v1/schedule"

	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		panic(err)
	}
	var out struct {
		Loop   string `json:"loop"`
		Policy string `json:"policy"`
		II     int    `json:"ii"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Printf("%s under %s: II=%d\n", out.Loop, out.Policy, out.II)

	// An identical request is answered from the result cache with the
	// exact bytes the first computation produced.
	resp2, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		panic(err)
	}
	resp2.Body.Close()
	fmt.Println("cache:", resp2.Header.Get("X-Cache"))

	if err := srv.Shutdown(context.Background()); err != nil {
		panic(err)
	}
	fmt.Println("drained")
	// Output:
	// scale under mdc: II=2
	// cache: hit
	// drained
}
