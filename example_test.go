package vliwcache_test

import (
	"context"
	"fmt"
	"time"

	"vliwcache"
)

// ExampleExecute compiles and simulates a small loop under the MDC
// coherence policy.
func ExampleExecute() {
	b := vliwcache.NewBuilder("scale")
	b.Symbol("v", 0x10000, 1<<20)
	b.Trip(1000, 1)
	x := b.Load("ld", vliwcache.AddrExpr{Base: "v", Stride: 16, Size: 4})
	y := b.Arith("mul", vliwcache.KindMul, x)
	b.Store("st", vliwcache.AddrExpr{Base: "v", Offset: -16, Stride: 16, Size: 4}, y)

	res, err := vliwcache.Execute(b.Loop(),
		vliwcache.WithPolicy(vliwcache.PolicyMDC),
		vliwcache.WithHeuristic(vliwcache.PrefClus),
		vliwcache.WithSimOptions(vliwcache.SimOptions{CheckCoherence: true}))
	if err != nil {
		panic(err)
	}
	fmt.Println("policy:", res.Plan.Policy)
	fmt.Println("violations:", res.Stats.Violations)
	fmt.Println("accesses:", res.Stats.TotalAccesses())
	// Output:
	// policy: MDC
	// violations: 0
	// accesses: 2000
}

// ExampleNewSuite computes experiment cells concurrently on the parallel
// engine: the grid fans out over a bounded worker pool, identical cells
// are computed once (single-flight), and cancellation propagates through
// the pipeline.
func ExampleNewSuite() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	suite := vliwcache.NewSuite(vliwcache.DefaultConfig(),
		vliwcache.WithParallelism(4), // 0 = one worker per core, 1 = serial
		vliwcache.WithSimOptions(vliwcache.SimOptions{MaxIterations: 100}))

	cell, err := suite.CellCtx(ctx, "epicdec", vliwcache.Variant{
		Policy:    vliwcache.PolicyDDGT,
		Heuristic: vliwcache.PrefClus,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("loops:", len(cell.Loops))
	m := suite.Metrics()
	fmt.Println("computed:", m.Computed, "cache hits:", m.CacheHits)
	// Output:
	// loops: 2
	// computed: 1 cache hits: 0
}

// ExampleChains analyzes a loop's memory dependent chains (§3.2).
func ExampleChains() {
	b := vliwcache.NewBuilder("chain")
	b.Symbol("c", 0x1000, 1<<16)
	b.Symbol("t", 0x9000, 1<<16)
	v := b.Load("ld", vliwcache.AddrExpr{Base: "c", Offset: -16, Stride: 16, Size: 4})
	b.Store("st", vliwcache.AddrExpr{Base: "c", Stride: 16, Size: 4}, v)
	b.Load("free", vliwcache.AddrExpr{Base: "t", Stride: 16, Size: 4})

	g, err := vliwcache.BuildDDG(b.Loop())
	if err != nil {
		panic(err)
	}
	chains, _ := vliwcache.Chains(g)
	st := vliwcache.AnalyzeChains(g)
	fmt.Println("chains:", len(chains))
	fmt.Printf("CMR: %.2f\n", st.CMR())
	// Output:
	// chains: 1
	// CMR: 0.67
}

// ExampleTransform applies the DDGT transformations (§3.3) and reports
// what they produced.
func ExampleTransform() {
	b := vliwcache.NewBuilder("ddgt")
	b.Symbol("c", 0x1000, 1<<16)
	// The load reads one element ahead of the store's walk: a memory anti
	// dependence at distance 1.
	v := b.Load("ld", vliwcache.AddrExpr{Base: "c", Offset: 16, Stride: 16, Size: 4})
	w := b.Arith("use", vliwcache.KindAdd, v)
	b.Store("st", vliwcache.AddrExpr{Base: "c", Stride: 16, Size: 4}, w)

	g, err := vliwcache.BuildDDG(b.Loop())
	if err != nil {
		panic(err)
	}
	plan, err := vliwcache.Transform(g, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println("replicated stores:", len(plan.ReplicaGroups))
	fmt.Println("ops after transform:", len(plan.Loop.Ops))
	// The MA dependence is replicated to all four store instances before
	// conversion, so four edges are eliminated.
	fmt.Println("MA dependences eliminated:", plan.RemovedMA)
	// Output:
	// replicated stores: 1
	// ops after transform: 6
	// MA dependences eliminated: 4
}
