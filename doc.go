// Package vliwcache is a library-quality reproduction of "Local Scheduling
// Techniques for Memory Coherence in a Clustered VLIW Processor with a
// Distributed Data Cache" (Gibert, Sánchez & González, CGO 2003).
//
// A word-interleaved cache clustered VLIW processor distributes the data
// cache across clusters. Memory instructions scheduled in different
// clusters can reach the cache banks out of program order, so aliased
// accesses can corrupt memory. The paper — and this package — provides two
// compiler-only answers, applied to modulo-scheduled loops:
//
//   - MDC: memory dependent chains. Connected components of the memory
//     dependence subgraph are pinned to a single cluster, whose in-order
//     issue serializes them (PolicyMDC).
//
//   - DDGT: data dependence graph transformations. Dependent stores are
//     replicated once per cluster (only the dynamic home instance
//     executes) and memory anti dependences become SYNC edges anchored at
//     a consumer of the load — stall-on-use makes the consumer's issue a
//     proof the load completed (PolicyDDGT).
//
// The package bundles everything needed to reproduce the paper end to end:
// a loop IR with affine address expressions, a dependence analyzer and
// disambiguator, a clustered iterative modulo scheduler with the PrefClus
// and MinComs cluster-assignment heuristics and cache-sensitive latency
// assignment, a cycle-level simulator of the distributed cache (memory
// buses, request combining, Attraction Buffers, stall-on-use, a coherence
// checker), a synthesized Mediabench-like workload suite, and harnesses
// regenerating every table and figure of the evaluation.
//
// # Quick start
//
//	b := vliwcache.NewBuilder("daxpy")
//	b.Symbol("x", 0x10000, 1<<20)
//	b.Symbol("y", 0x80000, 1<<20)
//	a := b.Reg()
//	x := b.Load("ldx", vliwcache.AddrExpr{Base: "x", Stride: 8, Size: 8})
//	y := b.Load("ldy", vliwcache.AddrExpr{Base: "y", Stride: 8, Size: 8})
//	s := b.Arith("fma", vliwcache.KindFMul, a, x)
//	r := b.Arith("sum", vliwcache.KindFAdd, s, y)
//	b.Store("sty", vliwcache.AddrExpr{Base: "y", Stride: 8, Size: 8}, r)
//	loop := b.Loop()
//
//	res, err := vliwcache.Execute(loop,
//		vliwcache.WithPolicy(vliwcache.PolicyMDC),
//		vliwcache.WithHeuristic(vliwcache.PrefClus))
//
// The machine defaults to the paper's Table 2 configuration; override it
// with WithArch. res.Stats then carries cycle counts (compute/stall), the
// access classification (local/remote × hit/miss, combined), and — with
// CheckCoherence set — the count of memory ordering violations, which is
// zero under PolicyMDC and PolicyDDGT and generally nonzero under the
// optimistic PolicyFree baseline on aliased loops.
//
// The legacy ExecOptions struct literal keeps working as a deprecated
// shim (it satisfies Option; see deprecated.go), but new code should use
// the functional options — `make check-deprecated` enforces that.
//
// # Cancellation
//
// ExecuteContext and ExecuteHybridContext accept a context.Context that is
// checked at every pipeline stage boundary (prepare → schedule →
// simulate); once the context is done they return its error promptly. The
// experiment suite's Suite.CellContext does the same for whole benchmark ×
// variant cells.
//
// # Parallel experiments
//
// A Suite computes its benchmark × variant grid on a bounded worker pool
// with single-flight memoization: concurrent callers asking for the same
// cell share one computation, and a Suite is safe for concurrent use.
//
//	suite := vliwcache.NewSuite(vliwcache.DefaultConfig(),
//		vliwcache.WithParallelism(8), // default: one worker per core
//		vliwcache.WithTracer(func(ev vliwcache.TraceEvent) { log.Print(ev.Stage) }))
//	cell, err := suite.CellContext(ctx, "epicdec", vliwcache.Variant{...})
//	fmt.Print(suite.Metrics()) // cells computed vs cache hits, utilization
//
// Figures and tables warm the grid in parallel and render serially in
// canonical cell order, so their output is byte-identical to a serial run
// (WithParallelism(1)). Failures are typed: errors.Is recognizes
// ErrUnknownBenchmark and ErrInfeasibleSchedule, and errors.As extracts a
// *PipelineError naming the benchmark, loop, variant and stage that failed.
package vliwcache
