package vliwcache

import (
	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ddg"
	"vliwcache/internal/experiments"
	"vliwcache/internal/ir"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/profiler"
	"vliwcache/internal/report"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// Machine description (see internal/arch).
type (
	// Config is the machine description: clusters, functional units, the
	// word-interleaved distributed cache, buses and the next memory level.
	Config = arch.Config
	// AccessLatencies bundles the four static access latencies.
	AccessLatencies = arch.AccessLatencies
	// SubblockID identifies the portion of a cache block homed in one
	// cluster.
	SubblockID = arch.SubblockID
)

// Layout selects the distributed cache organization.
type Layout = arch.Layout

// Cache layouts: the paper's word-interleaved design, and the
// multiVLIW-style replicated design of §2.3.
const (
	LayoutWordInterleaved = arch.LayoutWordInterleaved
	LayoutReplicated      = arch.LayoutReplicated
)

// DefaultConfig returns the paper's Table 2 configuration.
func DefaultConfig() Config { return arch.Default() }

// NobalMemConfig returns the NOBAL+MEM bus configuration of §4.2.
func NobalMemConfig() Config { return arch.NobalMem() }

// NobalRegConfig returns the NOBAL+REG bus configuration of §4.2.
func NobalRegConfig() Config { return arch.NobalReg() }

// Loop IR (see internal/ir).
type (
	// Loop is an innermost loop body, the unit of modulo scheduling.
	Loop = ir.Loop
	// Op is one operation of a loop body.
	Op = ir.Op
	// Kind enumerates operation kinds.
	Kind = ir.Kind
	// Reg is a virtual register.
	Reg = ir.Reg
	// AddrExpr is an affine address expression base+offset+stride·i.
	AddrExpr = ir.AddrExpr
	// Symbol describes one memory object referenced by a loop.
	Symbol = ir.Symbol
	// Builder offers a fluent loop-construction API.
	Builder = ir.Builder
)

// Operation kinds.
const (
	KindLoad    = ir.KindLoad
	KindStore   = ir.KindStore
	KindAdd     = ir.KindAdd
	KindSub     = ir.KindSub
	KindMul     = ir.KindMul
	KindDiv     = ir.KindDiv
	KindShift   = ir.KindShift
	KindLogic   = ir.KindLogic
	KindCmp     = ir.KindCmp
	KindFAdd    = ir.KindFAdd
	KindFSub    = ir.KindFSub
	KindFMul    = ir.KindFMul
	KindFDiv    = ir.KindFDiv
	KindCopy    = ir.KindCopy
	KindFakeUse = ir.KindFakeUse
)

// NoReg marks the absence of a destination register.
const NoReg = ir.NoReg

// NewLoop returns an empty loop.
func NewLoop(name string) *Loop { return ir.NewLoop(name) }

// NewBuilder starts building a loop.
func NewBuilder(name string) *Builder { return ir.NewBuilder(name) }

// EncodeLoopJSON renders a loop in the JSON interchange format accepted by
// the command-line tools.
func EncodeLoopJSON(l *Loop) ([]byte, error) { return ir.EncodeJSON(l) }

// DecodeLoopJSON parses and validates a loop from the JSON interchange
// format.
func DecodeLoopJSON(data []byte) (*Loop, error) { return ir.DecodeJSON(data) }

// Dependence graphs (see internal/ddg).
type (
	// DDG is a data dependence graph over a loop's operations.
	DDG = ddg.Graph
	// DDGEdge is one dependence edge.
	DDGEdge = ddg.Edge
	// EdgeKind classifies dependence edges (RF/MF/MA/MO/SYNC).
	EdgeKind = ddg.EdgeKind
)

// Dependence edge kinds.
const (
	RF   = ddg.RF
	MF   = ddg.MF
	MA   = ddg.MA
	MO   = ddg.MO
	SYNC = ddg.SYNC
)

// BuildDDG constructs the dependence graph of a loop: register flow
// dependences plus memory dependences from the affine disambiguator.
func BuildDDG(l *Loop) (*DDG, error) { return ddg.Build(l) }

// The paper's contribution (see internal/core).
type (
	// Policy selects how memory coherence is guaranteed.
	Policy = core.Policy
	// Plan is a loop prepared for scheduling under a policy.
	Plan = core.Plan
	// ChainStats carries the CMR/CAR ratios of Table 3.
	ChainStats = core.ChainStats
)

// Coherence policies.
const (
	// PolicyFree is the optimistic (unsound) baseline.
	PolicyFree = core.PolicyFree
	// PolicyMDC builds memory dependent chains.
	PolicyMDC = core.PolicyMDC
	// PolicyDDGT applies store replication and load–store synchronization.
	PolicyDDGT = core.PolicyDDGT
)

// Prepare analyzes a loop and applies the given coherence policy.
func Prepare(l *Loop, p Policy, numClusters int) (*Plan, error) {
	return core.Prepare(l, p, numClusters)
}

// Transform applies the DDGT transformations to a copy of the graph.
func Transform(g *DDG, numClusters int) (*Plan, error) { return core.Transform(g, numClusters) }

// Chains computes the memory dependent chains of a graph.
func Chains(g *DDG) (chains [][]int, chainOf map[int]int) { return core.Chains(g) }

// AnalyzeChains computes the loop's chain statistics (Table 3).
func AnalyzeChains(g *DDG) ChainStats { return core.AnalyzeChains(g) }

// Specialize removes ambiguous dependences that never materialize on the
// loop's execution input (code specialization, §6 / Table 5), returning the
// specialized graph and the number of removed edges.
func Specialize(g *DDG) (*DDG, int) { return core.Specialize(g) }

// Scheduling (see internal/sched).
type (
	// Schedule is a clustered modulo schedule.
	Schedule = sched.Schedule
	// ScheduleOptions configure the scheduler.
	ScheduleOptions = sched.Options
	// Heuristic selects the cluster assignment heuristic.
	Heuristic = sched.Heuristic
	// Copy is a scheduled inter-cluster register transfer.
	Copy = sched.Copy
)

// Cluster assignment heuristics (§2.2).
const (
	PrefClus = sched.PrefClus
	MinComs  = sched.MinComs
)

// Order selects the scheduler's placement priority.
type Order = sched.Order

// Placement priority orders: Rau-style height or swing-style slack.
const (
	OrderHeight = sched.OrderHeight
	OrderSlack  = sched.OrderSlack
)

// ModuloSchedule runs the clustered iterative modulo scheduler on a plan.
func ModuloSchedule(p *Plan, opts ScheduleOptions) (*Schedule, error) { return sched.Run(p, opts) }

// ValidateSchedule checks every invariant of a schedule (placement,
// capacities, dependences, chain and replica constraints).
func ValidateSchedule(s *Schedule) error { return sched.Validate(s) }

// Profiling (see internal/profiler).
type (
	// Profile holds per-op home-cluster histograms.
	Profile = profiler.Profile
)

// ProfileLoop computes preferred-cluster information on the profile input.
func ProfileLoop(l *Loop, cfg Config) *Profile { return profiler.Run(l, cfg) }

// Simulation (see internal/sim).
type (
	// Stats aggregates the observable quantities the paper reports.
	Stats = sim.Stats
	// SimOptions control a simulation run.
	SimOptions = sim.Options
	// AccessClass classifies memory accesses.
	AccessClass = sim.Class
)

// Access classes (§2.1 plus "combined").
const (
	LocalHit   = sim.LocalHit
	RemoteHit  = sim.RemoteHit
	LocalMiss  = sim.LocalMiss
	RemoteMiss = sim.RemoteMiss
	Combined   = sim.Combined
)

// Simulate executes a schedule on the cycle-level machine model.
func Simulate(s *Schedule, opts SimOptions) (*Stats, error) { return sim.Run(s, opts) }

// Report renders a detailed human-readable report of a schedule and its
// simulation: II decomposition with the binding recurrence, per-cluster
// utilization, and the memory behaviour breakdown. stats may be nil.
func Report(s *Schedule, stats *Stats) string { return report.Text(s, stats) }

// Workloads (see internal/mediabench).
type (
	// Benchmark is one synthesized Mediabench program.
	Benchmark = mediabench.Benchmark
)

// Benchmarks generates the full synthesized Mediabench suite (Table 1).
func Benchmarks() []*Benchmark { return mediabench.All() }

// BenchmarkByName generates one benchmark.
func BenchmarkByName(name string) (*Benchmark, error) { return mediabench.Get(name) }

// Experiments (see internal/experiments).
type (
	// Suite runs and caches benchmark × variant experiment cells.
	Suite = experiments.Suite
	// Variant is one (policy, heuristic) combination.
	Variant = experiments.Variant
	// LoopRun is one loop's outcome under one variant.
	LoopRun = experiments.LoopRun
)

// NewSuite builds an experiment suite over the paper's figure benchmarks.
func NewSuite(cfg Config) *Suite { return experiments.NewSuite(cfg) }

// ExecOptions configure the one-call pipeline.
type ExecOptions struct {
	Arch      Config
	Policy    Policy
	Heuristic Heuristic
	Sim       SimOptions
}

// Result bundles the outcome of the one-call pipeline.
type Result struct {
	Plan     *Plan
	Profile  *Profile
	Schedule *Schedule
	Stats    *Stats
}

// Execute runs the full pipeline on one loop: profile, prepare under the
// policy, modulo schedule, and simulate.
func Execute(l *Loop, opts ExecOptions) (*Result, error) {
	plan, err := core.Prepare(l, opts.Policy, opts.Arch.NumClusters)
	if err != nil {
		return nil, err
	}
	prof := profiler.Run(l, opts.Arch)
	sc, err := sched.Run(plan, sched.Options{
		Arch:      opts.Arch,
		Heuristic: opts.Heuristic,
		Profile:   prof,
	})
	if err != nil {
		return nil, err
	}
	st, err := sim.Run(sc, opts.Sim)
	if err != nil {
		return nil, err
	}
	return &Result{Plan: plan, Profile: prof, Schedule: sc, Stats: st}, nil
}

// ExecuteHybrid implements the per-loop hybrid of §6: both MDC and DDGT are
// compiled and simulated and the faster result is returned.
func ExecuteHybrid(l *Loop, opts ExecOptions) (*Result, error) {
	opts.Policy = PolicyMDC
	mdc, err := Execute(l, opts)
	if err != nil {
		return nil, err
	}
	opts.Policy = PolicyDDGT
	dt, err := Execute(l, opts)
	if err != nil {
		return nil, err
	}
	if dt.Stats.Cycles() < mdc.Stats.Cycles() {
		return dt, nil
	}
	return mdc, nil
}
