package vliwcache

import (
	"context"
	"io"
	"net/http"
	"time"

	"vliwcache/internal/apiv1"
	"vliwcache/internal/arch"
	"vliwcache/internal/archspace"
	"vliwcache/internal/cluster"
	"vliwcache/internal/core"
	"vliwcache/internal/ddg"
	"vliwcache/internal/engine"
	"vliwcache/internal/experiments"
	"vliwcache/internal/ir"
	"vliwcache/internal/loadgen"
	"vliwcache/internal/loopgen"
	"vliwcache/internal/mc"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/obs"
	"vliwcache/internal/oracle"
	"vliwcache/internal/perfbench"
	"vliwcache/internal/profiler"
	"vliwcache/internal/report"
	"vliwcache/internal/resultcache"
	"vliwcache/internal/sched"
	"vliwcache/internal/server"
	"vliwcache/internal/sim"
)

// Machine description (see internal/arch).
type (
	// Config is the machine description: clusters, functional units, the
	// word-interleaved distributed cache, buses and the next memory level.
	Config = arch.Config
	// AccessLatencies bundles the four static access latencies.
	AccessLatencies = arch.AccessLatencies
	// SubblockID identifies the portion of a cache block homed in one
	// cluster.
	SubblockID = arch.SubblockID
)

// Layout selects the distributed cache organization.
type Layout = arch.Layout

// Cache layouts: the paper's word-interleaved design, and the
// multiVLIW-style replicated design of §2.3.
const (
	LayoutWordInterleaved = arch.LayoutWordInterleaved
	LayoutReplicated      = arch.LayoutReplicated
)

// DefaultConfig returns the paper's Table 2 configuration.
func DefaultConfig() Config { return arch.Default() }

// NobalMemConfig returns the NOBAL+MEM bus configuration of §4.2.
func NobalMemConfig() Config { return arch.NobalMem() }

// NobalRegConfig returns the NOBAL+REG bus configuration of §4.2.
func NobalRegConfig() Config { return arch.NobalReg() }

// Loop IR (see internal/ir).
type (
	// Loop is an innermost loop body, the unit of modulo scheduling.
	Loop = ir.Loop
	// Op is one operation of a loop body.
	Op = ir.Op
	// Kind enumerates operation kinds.
	Kind = ir.Kind
	// Reg is a virtual register.
	Reg = ir.Reg
	// AddrExpr is an affine address expression base+offset+stride·i.
	AddrExpr = ir.AddrExpr
	// Symbol describes one memory object referenced by a loop.
	Symbol = ir.Symbol
	// Builder offers a fluent loop-construction API.
	Builder = ir.Builder
)

// Operation kinds.
const (
	KindLoad    = ir.KindLoad
	KindStore   = ir.KindStore
	KindAdd     = ir.KindAdd
	KindSub     = ir.KindSub
	KindMul     = ir.KindMul
	KindDiv     = ir.KindDiv
	KindShift   = ir.KindShift
	KindLogic   = ir.KindLogic
	KindCmp     = ir.KindCmp
	KindFAdd    = ir.KindFAdd
	KindFSub    = ir.KindFSub
	KindFMul    = ir.KindFMul
	KindFDiv    = ir.KindFDiv
	KindCopy    = ir.KindCopy
	KindFakeUse = ir.KindFakeUse
)

// NoReg marks the absence of a destination register.
const NoReg = ir.NoReg

// NewLoop returns an empty loop.
func NewLoop(name string) *Loop { return ir.NewLoop(name) }

// NewBuilder starts building a loop.
func NewBuilder(name string) *Builder { return ir.NewBuilder(name) }

// EncodeLoopJSON renders a loop in the JSON interchange format accepted by
// the command-line tools.
func EncodeLoopJSON(l *Loop) ([]byte, error) { return ir.EncodeJSON(l) }

// DecodeLoopJSON parses and validates a loop from the JSON interchange
// format.
func DecodeLoopJSON(data []byte) (*Loop, error) { return ir.DecodeJSON(data) }

// Dependence graphs (see internal/ddg).
type (
	// DDG is a data dependence graph over a loop's operations.
	DDG = ddg.Graph
	// DDGEdge is one dependence edge.
	DDGEdge = ddg.Edge
	// EdgeKind classifies dependence edges (RF/MF/MA/MO/SYNC).
	EdgeKind = ddg.EdgeKind
)

// Dependence edge kinds.
const (
	RF   = ddg.RF
	MF   = ddg.MF
	MA   = ddg.MA
	MO   = ddg.MO
	SYNC = ddg.SYNC
)

// BuildDDG constructs the dependence graph of a loop: register flow
// dependences plus memory dependences from the affine disambiguator.
func BuildDDG(l *Loop) (*DDG, error) { return ddg.Build(l) }

// The paper's contribution (see internal/core).
type (
	// Policy selects how memory coherence is guaranteed.
	Policy = core.Policy
	// Plan is a loop prepared for scheduling under a policy.
	Plan = core.Plan
	// ChainStats carries the CMR/CAR ratios of Table 3.
	ChainStats = core.ChainStats
)

// Coherence policies.
const (
	// PolicyFree is the optimistic (unsound) baseline.
	PolicyFree = core.PolicyFree
	// PolicyMDC builds memory dependent chains.
	PolicyMDC = core.PolicyMDC
	// PolicyDDGT applies store replication and load–store synchronization.
	PolicyDDGT = core.PolicyDDGT
)

// Prepare analyzes a loop and applies the given coherence policy.
func Prepare(l *Loop, p Policy, numClusters int) (*Plan, error) {
	return core.Prepare(l, p, numClusters)
}

// Transform applies the DDGT transformations to a copy of the graph.
func Transform(g *DDG, numClusters int) (*Plan, error) { return core.Transform(g, numClusters) }

// Chains computes the memory dependent chains of a graph.
func Chains(g *DDG) (chains [][]int, chainOf map[int]int) { return core.Chains(g) }

// AnalyzeChains computes the loop's chain statistics (Table 3).
func AnalyzeChains(g *DDG) ChainStats { return core.AnalyzeChains(g) }

// Specialize removes ambiguous dependences that never materialize on the
// loop's execution input (code specialization, §6 / Table 5), returning the
// specialized graph and the number of removed edges.
func Specialize(g *DDG) (*DDG, int) { return core.Specialize(g) }

// Scheduling (see internal/sched).
type (
	// Schedule is a clustered modulo schedule.
	Schedule = sched.Schedule
	// ScheduleOptions configure the scheduler.
	ScheduleOptions = sched.Options
	// Heuristic selects the cluster assignment heuristic.
	Heuristic = sched.Heuristic
	// Copy is a scheduled inter-cluster register transfer.
	Copy = sched.Copy
)

// Cluster assignment heuristics (§2.2).
const (
	PrefClus = sched.PrefClus
	MinComs  = sched.MinComs
)

// ModuloSchedule runs the clustered iterative modulo scheduler on a plan.
func ModuloSchedule(p *Plan, opts ScheduleOptions) (*Schedule, error) { return sched.Run(p, opts) }

// Scheduler is the pluggable scheduling interface: anything that turns a
// prepared plan into a valid modulo schedule. Registered implementations
// are selected by name — see SchedulerNames, WithScheduler and
// WithPortfolio.
type Scheduler = sched.Scheduler

// SchedulerNames lists the registered schedulers, sorted: the paper's
// heuristics ("prefclus", "mincoms"), their swing-ordered variants
// ("prefclus-slack", "mincoms-slack"), the locality-aware assignment
// ("locality") and the exact branch-and-bound oracle ("oracle").
func SchedulerNames() []string { return sched.Names() }

// ScheduleWith runs the named registered scheduler on a plan. Unknown
// names wrap ErrUnknownScheduler; ctx cancellation is honored at II
// boundaries (and inside the oracle's search).
func ScheduleWith(ctx context.Context, name string, p *Plan, opts ScheduleOptions) (*Schedule, error) {
	return sched.RunScheduler(ctx, name, p, opts)
}

// ValidateSchedule checks every invariant of a schedule (placement,
// capacities, dependences, chain and replica constraints).
func ValidateSchedule(s *Schedule) error { return sched.Validate(s) }

// Profiling (see internal/profiler).
type (
	// Profile holds per-op home-cluster histograms.
	Profile = profiler.Profile
)

// ProfileLoop computes preferred-cluster information on the profile input.
func ProfileLoop(l *Loop, cfg Config) *Profile { return profiler.Run(l, cfg) }

// Simulation (see internal/sim).
type (
	// Stats aggregates the observable quantities the paper reports.
	Stats = sim.Stats
	// SimOptions control a simulation run. Set FastPath to skip dead
	// cycles and extrapolate validated steady-state loops — results are
	// bit-identical to the default path (see FastPathStats for the
	// per-run eligibility and skip accounting).
	SimOptions = sim.Options
	// FastPathStats reports what the steady-state fast path did on a
	// run: eligible vs fallback counts (with the last fallback reason),
	// dead cycles skipped, and iterations extrapolated.
	FastPathStats = sim.FastPathStats
	// AccessClass classifies memory accesses.
	AccessClass = sim.Class
)

// Access classes (§2.1 plus "combined").
const (
	LocalHit   = sim.LocalHit
	RemoteHit  = sim.RemoteHit
	LocalMiss  = sim.LocalMiss
	RemoteMiss = sim.RemoteMiss
	Combined   = sim.Combined
)

// Simulate is SimulateContext with a background context.
func Simulate(s *Schedule, opts SimOptions) (*Stats, error) {
	return SimulateContext(context.Background(), s, opts)
}

// SimulateContext executes a schedule on the cycle-level machine model;
// ctx is polled every few thousand simulated cycles, so a canceled run
// returns promptly.
func SimulateContext(ctx context.Context, s *Schedule, opts SimOptions) (*Stats, error) {
	return sim.RunContext(ctx, s, opts)
}

// SimulateBatch executes many schedules on one reused machine, in order.
// With opts.FastPath set this is the fastest way to sweep a family of
// schedules: the substrate is allocated once and steady-state iterations
// are extrapolated instead of simulated. Statistics are bit-identical to
// per-schedule Simulate calls.
func SimulateBatch(ctx context.Context, scs []*Schedule, opts SimOptions) ([]Stats, error) {
	return sim.RunBatch(ctx, scs, opts)
}

// Observability (see internal/obs). Set SimOptions.Tracer (or install an
// Observer on a Suite) to capture cycle-level simulation events; leave it
// nil for the zero-overhead path.
type (
	// SimEvent is one cycle-level simulation event: an operation issue, a
	// cache-bank arrival, a bus transfer, Attraction Buffer activity, a
	// stall, or a coherence-check outcome.
	SimEvent = obs.Event
	// SimEventKind enumerates simulation event kinds.
	SimEventKind = obs.Kind
	// SimTracer receives simulation events. Implementations used across
	// concurrent runs must be safe for concurrent use.
	SimTracer = obs.Tracer
	// TraceRing is a fixed-capacity in-memory sink keeping the most
	// recent events.
	TraceRing = obs.Ring
	// TraceJSONL streams events as deterministic JSON Lines.
	TraceJSONL = obs.JSONL
	// TraceCount tallies events by kind and class without storing them.
	TraceCount = obs.Count
	// Observer supplies per-run simulation tracers to a Suite (see
	// WithObserver).
	Observer = experiments.Observer
)

// Simulation event kinds.
const (
	EventIssue        = obs.KindIssue
	EventStall        = obs.KindStall
	EventAccess       = obs.KindAccess
	EventBankArrival  = obs.KindBankArrival
	EventBusTransfer  = obs.KindBusTransfer
	EventABHit        = obs.KindABHit
	EventABFlush      = obs.KindABFlush
	EventABInvalidate = obs.KindABInvalidate
	EventCoherence    = obs.KindCoherence
)

// NewTraceRing returns a ring-buffer sink holding the last n events.
func NewTraceRing(n int) *TraceRing { return obs.NewRing(n) }

// NewTraceJSONL returns a sink streaming events to w as JSON Lines.
// Call Flush when the run completes (Simulate flushes it automatically).
func NewTraceJSONL(w io.Writer) *TraceJSONL { return obs.NewJSONL(w) }

// NewTraceCount returns a counting sink.
func NewTraceCount() *TraceCount { return obs.NewCount() }

// Machine-readable exports (see internal/report): simulation statistics,
// engine metrics and fault logs as JSON or CSV.
type (
	// StatsExport labels one Stats value for export.
	StatsExport = report.StatsRecord
	// MetricsExport labels one engine metrics snapshot for export.
	MetricsExport = report.MetricsRecord
	// FaultExport labels one fault log or cell failure for export.
	FaultExport = report.FaultRecord
)

// WriteStatsJSON serializes simulation statistics as a JSON array.
func WriteStatsJSON(w io.Writer, recs []StatsExport) error { return report.WriteStatsJSON(w, recs) }

// WriteStatsCSV serializes simulation statistics as CSV.
func WriteStatsCSV(w io.Writer, recs []StatsExport) error { return report.WriteStatsCSV(w, recs) }

// WriteMetricsJSON serializes engine metrics as a JSON array.
func WriteMetricsJSON(w io.Writer, recs []MetricsExport) error {
	return report.WriteMetricsJSON(w, recs)
}

// WriteMetricsCSV serializes per-stage engine latency rows as CSV.
func WriteMetricsCSV(w io.Writer, recs []MetricsExport) error {
	return report.WriteMetricsCSV(w, recs)
}

// WriteFaultsJSON serializes fault records as a JSON array.
func WriteFaultsJSON(w io.Writer, recs []FaultExport) error { return report.WriteFaultsJSON(w, recs) }

// WriteFaultsCSV serializes fault records as CSV.
func WriteFaultsCSV(w io.Writer, recs []FaultExport) error { return report.WriteFaultsCSV(w, recs) }

// Report renders a detailed human-readable report of a schedule and its
// simulation: II decomposition with the binding recurrence, per-cluster
// utilization, and the memory behaviour breakdown. stats may be nil.
func Report(s *Schedule, stats *Stats) string { return report.Text(s, stats) }

// Optimality gap (see internal/oracle and the gap experiment): the exact
// branch-and-bound oracle proves per-loop lower bounds on the initiation
// interval; the gap report compares every registered heuristic against
// them.
type (
	// GapRow is one loop's optimality-gap record: proven lower bound,
	// oracle II and status, and every heuristic's II.
	GapRow = report.GapRow
	// GapHeuristic is one heuristic scheduler's result on a loop.
	GapHeuristic = report.GapHeuristic
	// GapOptions configure GapReportContext (policy, oracle node budget,
	// heuristic set).
	GapOptions = experiments.GapOptions
	// OracleBudgetError carries the oracle's best proven bound when its
	// node budget ran out; retrieve it with errors.As from errors
	// wrapping ErrOracleBudget.
	OracleBudgetError = oracle.BudgetError
)

// Gap row statuses.
const (
	// GapClosed marks a loop the oracle solved to optimality.
	GapClosed = report.GapClosed
	// GapBoundOnly marks a loop where only the lower bound is proven.
	GapBoundOnly = report.GapBoundOnly
)

// GapReportContext computes the optimality-gap rows for the named
// benchmarks (nil = the full 14-benchmark suite): every registered
// heuristic's II against the oracle's proven lower bound, per loop.
// Output is deterministic — equal inputs yield byte-identical exports.
func GapReportContext(ctx context.Context, cfg Config, benches []*Benchmark, opts GapOptions) ([]GapRow, error) {
	return experiments.GapReport(ctx, cfg, benches, opts)
}

// WriteGapJSON serializes gap rows as an indented JSON array.
func WriteGapJSON(w io.Writer, rows []GapRow) error { return report.WriteGapJSON(w, rows) }

// WriteGapCSV serializes gap rows as CSV (one heuristic II column each).
func WriteGapCSV(w io.Writer, rows []GapRow) error { return report.WriteGapCSV(w, rows) }

// Model checking (see internal/mc): exhaustive explicit-state
// verification of the coherence substrate on small bounded
// configurations. Where the chaos harness samples timed interleavings,
// the checker enumerates all of them (in the untimed abstraction) and
// checks the paper's invariants on every reachable state.
type (
	// ModelConfig is one bounded model-checking problem: machine shape,
	// program, and exploration budget.
	ModelConfig = mc.Config
	// ModelOp is one memory operation of the modeled program.
	ModelOp = mc.Op
	// ModelResult is one check's outcome: explored-space counts and, on
	// violation, a minimal counterexample.
	ModelResult = mc.Result
	// ModelCounterexample is a minimal-length violating trace; it replays
	// both as an obs event stream and as a fault-script delay plan.
	ModelCounterexample = mc.Counterexample
	// ModelBudgetError reports an exhausted exploration budget with the
	// coverage reached; retrieve it with errors.As from errors wrapping
	// ErrModelBudget.
	ModelBudgetError = mc.BudgetError
)

// ErrModelBudget is the sentinel all model-checking budget exhaustions
// wrap.
var ErrModelBudget = mc.ErrBudget

// CheckModel exhaustively explores the configuration and checks the
// coherence invariants on every reachable state. A violation is not an
// error: it is reported in the Result's Counterexample. The error return
// is for invalid configurations, context cancellation and exhausted
// budgets (ErrModelBudget, with the partial Result still valid).
func CheckModel(ctx context.Context, cfg *ModelConfig) (*ModelResult, error) {
	return mc.Check(ctx, cfg)
}

// ModelConfigs returns the canonical bounded configurations `paperbench
// -mc` and `make mc-smoke` verify.
func ModelConfigs() []*ModelConfig { return mc.CanonicalConfigs() }

// Workloads (see internal/mediabench).
type (
	// Benchmark is one synthesized Mediabench program.
	Benchmark = mediabench.Benchmark
)

// Benchmarks generates the full synthesized Mediabench suite (Table 1).
func Benchmarks() []*Benchmark { return mediabench.All() }

// BenchmarkByName generates one benchmark.
func BenchmarkByName(name string) (*Benchmark, error) { return mediabench.Get(name) }

// Experiments (see internal/experiments).
type (
	// Suite runs and caches benchmark × variant experiment cells on a
	// bounded parallel engine; it is safe for concurrent use.
	Suite = experiments.Suite
	// Variant is one (policy, heuristic) combination.
	Variant = experiments.Variant
	// LoopRun is one loop's outcome under one variant.
	LoopRun = experiments.LoopRun
	// TraceEvent reports the completion of one pipeline stage to a tracer
	// installed with WithTracer.
	TraceEvent = experiments.TraceEvent
	// Metrics is a snapshot of the experiment engine's counters: cells
	// computed vs cache hits, worker utilization, wall time per stage.
	Metrics = engine.Metrics
	// CellFailure records why one (benchmark, variant) cell could not be
	// computed when a Suite runs degraded (WithDegraded); list them with
	// Suite.Failures.
	CellFailure = experiments.CellFailure
	// PanicError is a recovered task panic (value + stack) surfaced as an
	// error by the experiment engine instead of crashing the process.
	PanicError = engine.PanicError
)

// Typed errors. Pipeline and suite failures wrap these sentinels (and
// *PipelineError), so callers use errors.Is / errors.As instead of
// matching message strings.
var (
	// ErrUnknownBenchmark reports a benchmark name outside the suite.
	ErrUnknownBenchmark = mediabench.ErrUnknownBenchmark
	// ErrInfeasibleSchedule reports that a loop does not fit within the
	// scheduler's II budget.
	ErrInfeasibleSchedule = sched.ErrInfeasible
	// ErrUnknownScheduler reports a scheduler name absent from the
	// registry (WithScheduler, WithPortfolio, ScheduleWith).
	ErrUnknownScheduler = sched.ErrUnknownScheduler
	// ErrOracleBudget reports that the exact oracle exhausted its node
	// budget before closing a loop; the result degrades to a proven
	// lower bound (errors.As against *oracle.BudgetError for the bound).
	ErrOracleBudget = oracle.ErrBudget
)

// PipelineError locates a failure inside the experiment grid: benchmark,
// loop, variant and pipeline stage. Retrieve it with errors.As.
type PipelineError = experiments.PipelineError

// settings collects everything the option-based entry points configure.
type settings struct {
	arch        Config
	archGrid    *ArchSpace
	policy      Policy
	heuristic   Heuristic
	scheduler   string
	portfolio   []string
	sim         SimOptions
	parallelism int
	tracer      func(TraceEvent)
	observer    Observer
	cellTimeout time.Duration
	cellRetries int
	degraded    bool
	pool        bool
	poolSize    int
	fastPath    bool
	failureHook func(*CellFailure)
}

// Option configures the option-based API: Execute, ExecuteContext,
// ExecuteHybrid and NewSuite. Options that don't concern an entry point
// are ignored by it (WithParallelism and WithTracer configure suites;
// WithPolicy configures single-loop execution). The legacy ExecOptions
// struct also satisfies Option, so pre-existing struct-literal call sites
// keep compiling.
type Option interface {
	apply(*settings)
}

type optionFunc func(*settings)

func (f optionFunc) apply(s *settings) { f(s) }

// WithArch selects the machine description (default: DefaultConfig()).
func WithArch(cfg Config) Option {
	return optionFunc(func(s *settings) { s.arch = cfg })
}

// WithArchGrid sets the architecture design-space grid RunSweep explores
// (default: CanonicalArchSpace()). Entry points that run a single machine
// (Execute, NewSuite) ignore it, consistent with the Option contract.
func WithArchGrid(g ArchSpace) Option {
	return optionFunc(func(s *settings) { s.archGrid = &g })
}

// WithPolicy selects the coherence policy (default: PolicyFree).
func WithPolicy(p Policy) Option {
	return optionFunc(func(s *settings) { s.policy = p })
}

// WithHeuristic selects the cluster-assignment heuristic (default:
// PrefClus).
func WithHeuristic(h Heuristic) Option {
	return optionFunc(func(s *settings) { s.heuristic = h })
}

// WithScheduler schedules with the named registered scheduler
// ("oracle", "locality", "prefclus-slack", ...) instead of the
// WithHeuristic enum. Unknown names surface as errors wrapping
// ErrUnknownScheduler when the pipeline runs. Overrides WithHeuristic;
// mutually exclusive with WithPortfolio (the last one set wins).
func WithScheduler(name string) Option {
	return optionFunc(func(s *settings) { s.scheduler, s.portfolio = name, nil })
}

// WithPortfolio races the named registered schedulers and keeps the best
// valid schedule (tie-break: II, then schedule length, then name order).
// A portfolio of one behaves exactly like WithScheduler with that name.
func WithPortfolio(names ...string) Option {
	return optionFunc(func(s *settings) {
		s.scheduler, s.portfolio = "", append([]string(nil), names...)
	})
}

// WithSimOptions sets the simulation options.
func WithSimOptions(o SimOptions) Option {
	return optionFunc(func(s *settings) { s.sim = o })
}

// WithFastPath turns on the simulator's steady-state fast path for every
// run a Suite executes (bit-identical results; ineligible runs fall back
// to plain simulation). Composes with WithSimOptions in either order.
func WithFastPath() Option {
	return optionFunc(func(s *settings) { s.fastPath = true })
}

// WithParallelism bounds how many experiment cells a Suite computes
// concurrently. Non-positive values (and the default) use
// runtime.GOMAXPROCS(0); WithParallelism(1) reproduces serial execution.
func WithParallelism(n int) Option {
	return optionFunc(func(s *settings) { s.parallelism = n })
}

// WithTracer installs a callback observing every pipeline stage a Suite
// runs. The tracer runs on worker goroutines and must be safe for
// concurrent use.
func WithTracer(fn func(TraceEvent)) Option {
	return optionFunc(func(s *settings) { s.tracer = fn })
}

// WithObserver installs an Observer on a Suite: its NewTracer hook is
// called once per pipeline run and the returned tracer receives that
// run's cycle-level simulation events. Runs execute on worker
// goroutines, so NewTracer — and any tracer shared between runs — must
// be safe for concurrent use.
func WithObserver(o Observer) Option {
	return optionFunc(func(s *settings) { s.observer = o })
}

// WithCellTimeout bounds the wall time of each Suite cell. An expired
// cell fails with context.DeadlineExceeded — fatally, or as an
// n/a(timeout) annotation under WithDegraded.
func WithCellTimeout(d time.Duration) Option {
	return optionFunc(func(s *settings) { s.cellTimeout = d })
}

// WithCellRetries re-runs a failed cell up to n extra times when the
// failure is transient.
func WithCellRetries(n int) Option {
	return optionFunc(func(s *settings) { s.cellRetries = n })
}

// WithDegraded turns on graceful degradation for a Suite: a failing cell
// (pipeline error, panic, deadline) no longer aborts figure and table
// rendering; it is recorded (Suite.Failures) and rendered as
// n/a(reason), excluded from aggregate means. With zero failures the
// output is byte-identical to normal mode.
func WithDegraded() Option {
	return optionFunc(func(s *settings) { s.degraded = true })
}

// WithMachinePool routes a Suite's simulations through a pool of at most
// n reusable simulation machines (<= 0 sizes the pool to the worker
// count). Pooled machines are reset to cold state between runs, so
// results are bit-identical to unpooled execution while the steady state
// stops allocating; pool traffic appears in Metrics as PoolRuns /
// PoolReuses.
func WithMachinePool(n int) Option {
	return optionFunc(func(s *settings) { s.pool, s.poolSize = true, n })
}

// WithFailureHook installs a callback invoked once per cell failure a
// degraded Suite records, including failures recorded by the internal
// suites that named experiments build. The hook runs on worker goroutines
// and must be safe for concurrent use.
func WithFailureHook(fn func(*CellFailure)) Option {
	return optionFunc(func(s *settings) { s.failureHook = fn })
}

func newSettings(opts []Option) settings {
	s := settings{arch: DefaultConfig()}
	for _, o := range opts {
		o.apply(&s)
	}
	return s
}

// Result bundles the outcome of the one-call pipeline.
type Result struct {
	Plan     *Plan
	Profile  *Profile
	Schedule *Schedule
	Stats    *Stats
}

// NewSuite builds an experiment suite over the paper's figure benchmarks.
// Useful options: WithSimOptions, WithParallelism, WithMachinePool,
// WithTracer, WithCellTimeout, WithDegraded.
func NewSuite(cfg Config, opts ...Option) *Suite {
	s := newSettings(opts)
	sopts := []experiments.Option{
		experiments.WithSimOptions(s.sim),
		experiments.WithParallelism(s.parallelism),
		experiments.WithTracer(s.tracer),
		experiments.WithCellTimeout(s.cellTimeout),
		experiments.WithCellRetries(s.cellRetries),
		experiments.WithObserver(s.observer),
	}
	if s.degraded {
		sopts = append(sopts, experiments.WithDegraded())
	}
	if s.pool {
		sopts = append(sopts, experiments.WithMachinePool(s.poolSize))
	}
	if s.fastPath {
		sopts = append(sopts, experiments.WithFastPath())
	}
	if s.failureHook != nil {
		sopts = append(sopts, experiments.WithFailureHook(s.failureHook))
	}
	if s.scheduler != "" {
		sopts = append(sopts, experiments.WithScheduler(s.scheduler))
	}
	if len(s.portfolio) > 0 {
		sopts = append(sopts, experiments.WithPortfolio(s.portfolio...))
	}
	return experiments.NewSuite(cfg, sopts...)
}

// Execute runs the full pipeline on one loop: profile, prepare under the
// policy, modulo schedule, and simulate. It accepts functional options
// (the documented form) as well as a legacy ExecOptions literal:
//
//	res, err := vliwcache.Execute(loop,
//		vliwcache.WithPolicy(vliwcache.PolicyMDC),
//		vliwcache.WithHeuristic(vliwcache.PrefClus))
//
// Use ExecuteContext to bound or cancel the run.
func Execute(l *Loop, opts ...Option) (*Result, error) {
	return ExecuteContext(context.Background(), l, opts...)
}

// ExecuteContext is Execute with cancellation: ctx is checked at every
// pipeline stage boundary (prepare → schedule → simulate) and its error is
// returned promptly once it is done.
func ExecuteContext(ctx context.Context, l *Loop, opts ...Option) (*Result, error) {
	s := newSettings(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := core.Prepare(l, s.policy, s.arch.NumClusters)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prof := profiler.Run(l, s.arch)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sopts := sched.Options{
		Arch:      s.arch,
		Heuristic: s.heuristic,
		Profile:   prof,
	}
	var sc *Schedule
	switch {
	case len(s.portfolio) > 0:
		var p *sched.Portfolio
		if p, err = sched.NewPortfolio(s.portfolio...); err == nil {
			sc, err = p.Schedule(ctx, plan, sopts)
		}
	case s.scheduler != "":
		sc, err = sched.RunScheduler(ctx, s.scheduler, plan, sopts)
	default:
		// The frozen enum path: byte-identical schedules and perf to the
		// pre-registry scheduler.
		sc, err = sched.Run(plan, sopts)
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := sim.RunContext(ctx, sc, s.sim)
	if err != nil {
		return nil, err
	}
	return &Result{Plan: plan, Profile: prof, Schedule: sc, Stats: st}, nil
}

// ExecuteHybrid implements the per-loop hybrid of §6: both MDC and DDGT are
// compiled and simulated and the faster result is returned. Any WithPolicy
// option is overridden by the hybrid's own MDC/DDGT choices.
func ExecuteHybrid(l *Loop, opts ...Option) (*Result, error) {
	return ExecuteHybridContext(context.Background(), l, opts...)
}

// ExecuteHybridContext is ExecuteHybrid with cancellation.
func ExecuteHybridContext(ctx context.Context, l *Loop, opts ...Option) (*Result, error) {
	mdc, err := ExecuteContext(ctx, l, append(opts[:len(opts):len(opts)], WithPolicy(PolicyMDC))...)
	if err != nil {
		return nil, err
	}
	dt, err := ExecuteContext(ctx, l, append(opts[:len(opts):len(opts)], WithPolicy(PolicyDDGT))...)
	if err != nil {
		return nil, err
	}
	if dt.Stats.Cycles() < mdc.Stats.Cycles() {
		return dt, nil
	}
	return mdc, nil
}

// Design-space exploration (see internal/archspace, internal/loopgen and
// the sweep experiment): the paper's single Table 2 machine opened into a
// sweepable grid of architecture points, and the 14 tuned benchmarks
// opened into a seeded continuum of envelope-checked generated loops.
type (
	// ArchSpace enumerates machine configurations over per-field dials;
	// the zero value of every dial inherits the base configuration.
	ArchSpace = archspace.Grid
	// ArchPoint is one named, validated configuration of a grid.
	ArchPoint = archspace.Point
	// ArchInvalid reports a grid point rejected by Config.Validate.
	ArchInvalid = archspace.Invalid
	// SweepWorkload names a set of loops runnable as sweep rows.
	SweepWorkload = experiments.SweepWorkload
	// SweepOptions configure Sweep (variants, simulation, fast path,
	// parallelism).
	SweepOptions = experiments.SweepOptions
	// SweepRow is one (arch point, workload, variant) cell of a sweep.
	SweepRow = report.SweepRow
	// CorpusParams are the generative loop corpus dials: memory
	// operations, chain ratio, alias density, recurrence depth, stride
	// mix, element size.
	CorpusParams = loopgen.CorpusParams
	// StrideMix weights the corpus's table / fixed-home / streaming
	// access patterns.
	StrideMix = loopgen.StrideMix
	// CorpusEnvelope bounds the characteristics (op counts, memory
	// ratio, CMR/CAR) every generated loop must satisfy.
	CorpusEnvelope = loopgen.Envelope
)

// CanonicalArchSpace returns the committed sweep's grid: cluster counts
// 2/4/8 × interleavings 2/4 × Attraction Buffers off/on over the Table 2
// base.
func CanonicalArchSpace() ArchSpace { return archspace.Canonical() }

// ArchPointName renders the canonical short name of a configuration
// (e.g. "c4-i4-8KB-w2-rb4x2-mb4x2-ab0-wi").
func ArchPointName(cfg Config) string { return archspace.Name(cfg) }

// DistinctSubstrates counts the distinct simulation substrates a set of
// grid points builds: points differing only in fields that do not change
// machine storage (e.g. InterleaveBytes) share one pooled machine.
func DistinctSubstrates(points []ArchPoint) int { return archspace.DistinctSubstrates(points) }

// Sweep runs every (arch point × workload × variant) cell and returns
// rows in canonical grid order. Determinism holds at any parallelism.
func Sweep(ctx context.Context, points []ArchPoint, workloads []SweepWorkload, opts SweepOptions) ([]SweepRow, error) {
	return experiments.Sweep(ctx, points, workloads, opts)
}

// RunSweep is the option-based spelling of Sweep: the grid comes from
// WithArchGrid (default CanonicalArchSpace()), simulation options from
// WithSimOptions/WithFastPath, and concurrency from WithParallelism.
func RunSweep(ctx context.Context, workloads []SweepWorkload, opts ...Option) ([]SweepRow, error) {
	s := newSettings(opts)
	grid := s.archGrid
	if grid == nil {
		g := CanonicalArchSpace()
		grid = &g
	}
	so := SweepOptions{Sim: s.sim, FastPath: s.fastPath, Parallelism: s.parallelism}
	return experiments.Sweep(ctx, grid.Points(), workloads, so)
}

// CanonicalSweepWorkloads returns the committed sweep's workloads: the
// full synthesized Mediabench suite plus the seed-1 generated corpus.
func CanonicalSweepWorkloads() ([]SweepWorkload, error) {
	return experiments.CanonicalSweepWorkloads()
}

// CanonicalSweepOptions returns the committed sweep's options.
func CanonicalSweepOptions() SweepOptions { return experiments.CanonicalSweepOptions() }

// WriteSweepJSON serializes sweep rows as an indented JSON array.
func WriteSweepJSON(w io.Writer, rows []SweepRow) error { return report.WriteSweepJSON(w, rows) }

// WriteSweepCSV serializes sweep rows as CSV.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error { return report.WriteSweepCSV(w, rows) }

// LoopCorpus generates n seeded loops satisfying the characteristic
// envelope; equal (seed, n, params) yield identical loops. Dials the
// envelope cannot satisfy fail with an error.
func LoopCorpus(seed int64, n int, p CorpusParams) ([]*Loop, error) {
	return loopgen.Corpus(seed, n, p)
}

// DefaultCorpusParams returns mediabench-like corpus dials.
func DefaultCorpusParams() CorpusParams { return loopgen.DefaultCorpusParams() }

// DefaultCorpusEnvelope returns the Table 1/3/4 characteristic envelope
// every generated corpus loop is checked against.
func DefaultCorpusEnvelope() CorpusEnvelope { return loopgen.DefaultEnvelope() }

// CheckCorpusEnvelope reports whether a loop fits the envelope.
func CheckCorpusEnvelope(l *Loop, env CorpusEnvelope) error { return loopgen.CheckEnvelope(l, env) }

// Serving (see internal/server and internal/resultcache): paperserved's
// HTTP service over the pipeline — a versioned wire schema, a
// content-addressed result cache with single-flight request coalescing,
// and admission control in front of the experiment engine.
type (
	// Server is the paperserved HTTP service. Build one with NewServer,
	// mount Handler (or call Serve / ListenAndServe), stop with Shutdown.
	Server = server.Server
	// ServerOption configures NewServer.
	ServerOption = server.Option
	// ResultCacheStats snapshots the serving result cache's counters
	// (hits, misses, coalesced flights, evictions, byte volume).
	ResultCacheStats = resultcache.Stats
	// RequestEvent is one request lifecycle stage (admit, shed,
	// cache_hit, coalesced, compute, error) emitted by the server.
	RequestEvent = obs.RequestEvent
	// RequestSink receives request lifecycle events.
	RequestSink = obs.RequestSink
	// RequestLog is a bounded in-memory RequestSink keeping the most
	// recent events.
	RequestLog = obs.RequestLog
)

// NewServer builds a paperserved service. No listener is opened until
// Serve or ListenAndServe.
func NewServer(opts ...ServerOption) *Server { return server.New(opts...) }

// WithCacheBytes sets the result cache's byte budget.
func WithCacheBytes(n int64) ServerOption { return server.WithCacheBytes(n) }

// WithQueueDepth bounds how many admitted requests may wait for a worker
// slot; requests beyond workers+depth are shed with 429.
func WithQueueDepth(n int) ServerOption { return server.WithQueueDepth(n) }

// WithDrainTimeout bounds how long Shutdown waits for in-flight requests.
func WithDrainTimeout(d time.Duration) ServerOption { return server.WithDrainTimeout(d) }

// WithServerDeadline sets the per-request deadline applied when a
// request does not carry one.
func WithServerDeadline(d time.Duration) ServerOption { return server.WithDefaultDeadline(d) }

// WithServerArch sets the base machine description requests start from.
func WithServerArch(cfg Config) ServerOption { return server.WithArch(cfg) }

// WithServerArchGrid sets the design-space grid the server advertises at
// GET /v1/archspace (default: the canonical grid).
func WithServerArchGrid(points []ArchPoint) ServerOption { return server.WithArchGrid(points) }

// WithServerParallelism bounds the server's compute worker pool.
func WithServerParallelism(n int) ServerOption { return server.WithParallelism(n) }

// WithRequestSink installs a sink receiving request lifecycle events.
func WithRequestSink(sink RequestSink) ServerOption { return server.WithRequestSink(sink) }

// NewRequestLog returns a bounded request-event log keeping the last n
// events.
func NewRequestLog(n int) *RequestLog { return obs.NewRequestLog(n) }

// WithRole labels the node in GET /healthz responses ("worker" in a
// cluster; empty for a standalone node, preserving the single-node wire
// bytes).
func WithRole(role string) ServerOption { return server.WithRole(role) }

// WithPeerView installs a callback supplying the node's view of its
// peers, reported in GET /healthz.
func WithPeerView(view func() []PeerStatus) ServerOption { return server.WithPeerView(view) }

// WithRetryJitterSeed seeds the deterministic jitter applied to 429
// Retry-After values.
func WithRetryJitterSeed(seed int64) ServerOption { return server.WithRetryJitterSeed(seed) }

// Distributed serving (see internal/cluster): a router that shards the
// v1 surface across worker nodes by consistent-hashing each cell's
// content address, plus the async job API (POST /v1/jobs) for suites
// and sweeps.
type (
	// Router decomposes suite/sweep requests into cells and routes each
	// to the worker owning its content address on a consistent-hash ring.
	Router = cluster.Router
	// RouterOption configures NewRouter.
	RouterOption = cluster.RouterOption
	// Ring is the consistent-hash ring mapping content addresses to
	// worker nodes with bounded key movement under membership change.
	Ring = cluster.Ring
	// PeerSet polls peer /healthz endpoints and caches the last view.
	PeerSet = cluster.PeerSet
	// JobStatus is the wire status of one async job.
	JobStatus = apiv1.JobStatus
	// PeerStatus is one peer's health as seen by a node.
	PeerStatus = apiv1.PeerStatus
	// HealthResponse is the GET /healthz wire schema.
	HealthResponse = apiv1.HealthResponse
)

// NewRouter builds a cluster router over the given workers.
func NewRouter(opts ...RouterOption) *Router { return cluster.NewRouter(opts...) }

// WithWorkers sets the router's worker base URLs.
func WithWorkers(urls ...string) RouterOption { return cluster.WithWorkers(urls...) }

// WithRouterArch sets the base machine description the router resolves
// requests against; it must match the workers' base configuration or
// content addresses will not align.
func WithRouterArch(cfg Config) RouterOption { return cluster.WithRouterArch(cfg) }

// WithVirtualNodes sets the ring's virtual nodes per worker.
func WithVirtualNodes(n int) RouterOption { return cluster.WithVirtualNodes(n) }

// WithJobParallelism bounds how many cells an async job computes
// concurrently.
func WithJobParallelism(n int) RouterOption { return cluster.WithJobParallelism(n) }

// WithRouterDrainTimeout bounds how long Shutdown waits for running
// jobs.
func WithRouterDrainTimeout(d time.Duration) RouterOption {
	return cluster.WithRouterDrainTimeout(d)
}

// NewRing builds a consistent-hash ring with the given virtual-node
// count (<= 0 uses the default 128) over the named nodes.
func NewRing(replicas int, nodes ...string) *Ring { return cluster.NewRing(replicas, nodes...) }

// NewPeerSet builds a poller over peer /healthz URLs (nil client uses a
// dedicated one with a short timeout).
func NewPeerSet(urls []string, client *http.Client) *PeerSet {
	return cluster.NewPeerSet(urls, client)
}

// Serving load + baseline (see internal/loadgen): cmd/paperload's
// open-loop Poisson generator and the committed BENCH_serve.json
// baseline `make bench-serve-check` validates.
type (
	// LoadTarget is one request in a generated mix.
	LoadTarget = loadgen.Target
	// LoadConfig parameterizes one load run.
	LoadConfig = loadgen.Config
	// LoadResult is one run's measured outcome.
	LoadResult = loadgen.Result
	// ServeBaseline is the committed serving-performance baseline.
	ServeBaseline = loadgen.Baseline
	// ServeRegression is one violation found by CompareServeBaselines.
	ServeRegression = loadgen.Regression
)

// RunOpenLoad drives an open-loop Poisson load run: arrivals at the
// configured mean rate regardless of outstanding responses, so queueing
// delay is measured instead of silently throttling the generator.
func RunOpenLoad(ctx context.Context, name string, cfg LoadConfig) (*LoadResult, error) {
	return loadgen.RunOpen(ctx, name, cfg)
}

// RunClosedLoad drives a closed-loop saturation run: N workers issuing
// back-to-back requests.
func RunClosedLoad(ctx context.Context, name string, cfg LoadConfig) (*LoadResult, error) {
	return loadgen.RunClosed(ctx, name, cfg)
}

// LoadServeBaseline reads and validates a committed serving baseline.
func LoadServeBaseline(path string) (*ServeBaseline, error) { return loadgen.Load(path) }

// CompareServeBaselines checks a fresh measurement against the recorded
// serving baseline (p99 growth, throughput shrink, cache-hit collapse).
func CompareServeBaselines(base, got *ServeBaseline, tolerance float64) []ServeRegression {
	return loadgen.Compare(base, got, tolerance)
}

// Performance baselines (see internal/perfbench). BENCH_sim.json at the
// repository root records the simulator hot path's measured performance;
// `make bench-check` re-measures and compares against it.
type (
	// BenchBaseline is the committed performance-baseline file: schema
	// version, the git SHA and date of the refresh, and per-benchmark
	// metrics (ns/op, allocs/op, B/op, cells/sec).
	BenchBaseline = perfbench.Baseline
	// BenchMetric is one benchmark's recorded performance.
	BenchMetric = perfbench.Metric
	// BenchRegression is one violation found by CompareBenchBaselines.
	BenchRegression = perfbench.Regression
)

// LoadBenchBaseline reads and validates a committed baseline file.
func LoadBenchBaseline(path string) (*BenchBaseline, error) { return perfbench.Load(path) }

// CompareBenchBaselines checks measured results against a recorded
// baseline: ns/op may drift up to base × (1 + tolerance) (<= 0 uses the
// default 10%); any allocs/op above the recorded value fails. It returns
// every violation, sorted by benchmark name.
func CompareBenchBaselines(base, got *BenchBaseline, tolerance float64) []BenchRegression {
	return perfbench.Compare(base, got, tolerance)
}
