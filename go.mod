module vliwcache

go 1.22
