package vliwcache

import "vliwcache/internal/sched"

// This file is the facade's consolidated pre-v1 compatibility surface.
// Everything in it keeps old call sites compiling but has a canonical
// replacement; nothing here gains features. The same convention applies
// below the facade: experiments.Suite.CellCtx and sim.RunCtx are the
// deprecated spellings of CellContext and RunContext.
//
// Conventions for the v1 surface:
//
//   - entry points are context-first: the canonical form is XxxContext
//     and the bare Xxx spelling is a thin background-context wrapper
//     (Execute/ExecuteContext, Simulate/SimulateContext);
//   - configuration is functional options named With*;
//   - constructors are named New*.

// Order selects the scheduler's placement priority.
//
// Deprecated: Order is the pre-registry spelling of scheduler selection.
// The ordering is part of a scheduler's identity now — select it by
// registry name instead: ScheduleWith / WithScheduler with "prefclus" or
// "mincoms" for the height-ordered schedulers, "prefclus-slack" or
// "mincoms-slack" for the swing-ordered ones. ScheduleOptions.Order
// keeps working for ModuloSchedule call sites.
type Order = sched.Order

// Placement priority orders.
//
// Deprecated: use the registry names instead — OrderHeight is implied by
// "prefclus"/"mincoms", OrderSlack by "prefclus-slack"/"mincoms-slack".
const (
	OrderHeight = sched.OrderHeight
	OrderSlack  = sched.OrderSlack
)

// ExecOptions configure the one-call pipeline.
//
// Deprecated: ExecOptions is the legacy struct-literal configuration
// form. It remains a valid Option — it applies all four fields at once,
// zero values included (a zero Arch selects DefaultConfig()) — so
// pre-existing Execute(loop, ExecOptions{...}) call sites keep
// compiling, but new code should pass functional options
// (WithArch, WithPolicy, WithHeuristic, WithSimOptions) to Execute or
// ExecuteContext instead.
type ExecOptions struct {
	Arch      Config
	Policy    Policy
	Heuristic Heuristic
	Sim       SimOptions
}

// apply makes the legacy struct a valid Option: it overwrites every
// execution field, zero values included, preserving its old semantics —
// except a zero-value Arch, which keeps the DefaultConfig() baseline. A
// zero Config describes no machine (zero clusters divides by zero in
// address mapping), so no working caller ever depended on it.
func (o ExecOptions) apply(s *settings) {
	if o.Arch.NumClusters != 0 {
		s.arch = o.Arch
	}
	s.policy, s.heuristic, s.sim = o.Policy, o.Heuristic, o.Sim
}
