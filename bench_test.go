package vliwcache

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark per artifact) and adds ablations for the design
// choices DESIGN.md calls out. Each benchmark iteration regenerates the
// artifact on a bounded simulation (so `go test -bench=.` terminates in
// minutes) and reports the headline quantities as custom metrics; the
// paperbench command prints the full artifacts.

import (
	"context"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/experiments"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/sim"
)

// benchSimOptions bound each regeneration.
var benchSimOptions = sim.Options{MaxIterations: 300, MaxEntries: 1}

func benchSuite(cfg arch.Config) *experiments.Suite {
	s := experiments.NewSuite(cfg)
	s.SimOptions = benchSimOptions
	return s
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table2(arch.Default()); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table3(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// figure7Metrics runs the Figure 7 (or 9) suite and reports the AMEAN
// normalized execution time of each solution/heuristic.
func figure7Metrics(b *testing.B, cfg arch.Config) {
	b.Helper()
	variants := map[string]experiments.Variant{
		"mdc_pref_norm":  experiments.MDCPrefClus,
		"mdc_min_norm":   experiments.MDCMinComs,
		"ddgt_pref_norm": experiments.DDGTPrefClus,
		"ddgt_min_norm":  experiments.DDGTMinComs,
	}
	for i := 0; i < b.N; i++ {
		s := benchSuite(cfg)
		sums := make(map[string]float64)
		for _, bench := range s.Benches {
			base, err := s.Cell(bench.Name, experiments.FreeMinComs)
			if err != nil {
				b.Fatal(err)
			}
			for name, v := range variants {
				c, err := s.Cell(bench.Name, v)
				if err != nil {
					b.Fatal(err)
				}
				sums[name] += float64(c.Total.Cycles()) / float64(base.Total.Cycles())
			}
		}
		for name, sum := range sums {
			b.ReportMetric(sum/float64(len(s.Benches)), name)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(arch.Default())
		var free, mdc, ddgt float64
		for _, bench := range s.Benches {
			for _, v := range []struct {
				variant experiments.Variant
				acc     *float64
			}{
				{experiments.FreePrefClus, &free},
				{experiments.MDCPrefClus, &mdc},
				{experiments.DDGTPrefClus, &ddgt},
			} {
				c, err := s.Cell(bench.Name, v.variant)
				if err != nil {
					b.Fatal(err)
				}
				*v.acc += c.Total.LocalHitRatio()
			}
		}
		n := float64(len(s.Benches))
		b.ReportMetric(free/n, "free_localhit")
		b.ReportMetric(mdc/n, "mdc_localhit")
		b.ReportMetric(ddgt/n, "ddgt_localhit")
	}
}

func BenchmarkFigure7(b *testing.B) {
	figure7Metrics(b, arch.Default())
}

func BenchmarkFigure9(b *testing.B) {
	figure7Metrics(b, arch.Default().WithAttractionBuffers(16))
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(arch.Default())
		var deltaSum float64
		var n int
		for _, bench := range s.Benches {
			mdc, err := s.Cell(bench.Name, experiments.MDCPrefClus)
			if err != nil {
				b.Fatal(err)
			}
			dt, err := s.Cell(bench.Name, experiments.DDGTPrefClus)
			if err != nil {
				b.Fatal(err)
			}
			if m := mdc.CommOpsPerIter(); m > 0 {
				deltaSum += dt.CommOpsPerIter() / m
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(deltaSum/float64(n), "mean_comm_ratio")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table5(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkNobal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Nobal(context.Background(), benchSimOptions)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty output")
		}
	}
}

func BenchmarkEpicLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.EpicLoop(context.Background(), benchSimOptions)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkHybrid measures the §6 per-loop hybrid against pure MDC and
// pure DDGT over the whole suite.
func BenchmarkHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var mdcCyc, ddgtCyc, hyCyc int64
		for _, bench := range mediabench.Figures() {
			cfg := DefaultConfig().WithInterleave(bench.Interleave)
			for _, loop := range bench.Loops {
				m, err := experiments.RunLoopContext(context.Background(), loop, cfg, experiments.MDCPrefClus, benchSimOptions)
				if err != nil {
					b.Fatal(err)
				}
				d, err := experiments.RunLoopContext(context.Background(), loop, cfg, experiments.DDGTPrefClus, benchSimOptions)
				if err != nil {
					b.Fatal(err)
				}
				mdcCyc += m.Stats.Cycles()
				ddgtCyc += d.Stats.Cycles()
				if d.Stats.Cycles() < m.Stats.Cycles() {
					hyCyc += d.Stats.Cycles()
				} else {
					hyCyc += m.Stats.Cycles()
				}
			}
		}
		b.ReportMetric(float64(hyCyc)/float64(mdcCyc), "hybrid_vs_mdc")
		b.ReportMetric(float64(hyCyc)/float64(ddgtCyc), "hybrid_vs_ddgt")
	}
}

// BenchmarkAblationRegBuses revisits the §4.2/Table 4 observation that with
// an upper bound of 32 register buses DDGT's compute time barely improves:
// the bottleneck is the extra stores and edges, not the communications.
func BenchmarkAblationRegBuses(b *testing.B) {
	bench, err := mediabench.Get("epicdec")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, buses := range []int{4, 32} {
			cfg := arch.Default().WithInterleave(bench.Interleave)
			cfg.RegBuses = buses
			run, err := experiments.RunLoopContext(context.Background(), bench.Loops[0], cfg, experiments.DDGTPrefClus, benchSimOptions)
			if err != nil {
				b.Fatal(err)
			}
			if buses == 4 {
				b.ReportMetric(float64(run.Stats.ComputeCycles), "compute_4buses")
			} else {
				b.ReportMetric(float64(run.Stats.ComputeCycles), "compute_32buses")
			}
		}
	}
}

// BenchmarkAblationInterleave sweeps the interleaving factor for one
// 2-byte benchmark (§4.1 matches the factor to the data size).
func BenchmarkAblationInterleave(b *testing.B) {
	bench, err := mediabench.Get("gsmdec")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, il := range []int{2, 4, 8} {
			cfg := arch.Default().WithInterleave(il)
			run, err := experiments.RunLoopContext(context.Background(), bench.Loops[0], cfg, experiments.MDCPrefClus, benchSimOptions)
			if err != nil {
				b.Fatal(err)
			}
			switch il {
			case 2:
				b.ReportMetric(run.Stats.LocalHitRatio(), "localhit_i2")
			case 4:
				b.ReportMetric(run.Stats.LocalHitRatio(), "localhit_i4")
			case 8:
				b.ReportMetric(run.Stats.LocalHitRatio(), "localhit_i8")
			}
		}
	}
}

// BenchmarkAblationABSize sweeps Attraction Buffer capacity on the epicdec
// chain loop (§5.4: 16 entries overflow under MDC).
func BenchmarkAblationABSize(b *testing.B) {
	bench, err := mediabench.Get("epicdec")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{0, 16, 64} {
			cfg := arch.Default().WithInterleave(bench.Interleave)
			if entries > 0 {
				cfg = cfg.WithAttractionBuffers(entries)
			}
			run, err := experiments.RunLoopContext(context.Background(), bench.Loops[0], cfg, experiments.MDCPrefClus, benchSimOptions)
			if err != nil {
				b.Fatal(err)
			}
			switch entries {
			case 0:
				b.ReportMetric(run.Stats.LocalHitRatio(), "localhit_noab")
			case 16:
				b.ReportMetric(run.Stats.LocalHitRatio(), "localhit_ab16")
			case 64:
				b.ReportMetric(run.Stats.LocalHitRatio(), "localhit_ab64")
			}
		}
	}
}

// Component micro-benchmarks.

func BenchmarkDDGBuild(b *testing.B) {
	bench, err := mediabench.Get("epicdec")
	if err != nil {
		b.Fatal(err)
	}
	loop := bench.Loops[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildDDG(loop); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduler(b *testing.B) {
	bench, err := mediabench.Get("pgpdec")
	if err != nil {
		b.Fatal(err)
	}
	loop := bench.Loops[0]
	cfg := DefaultConfig().WithInterleave(bench.Interleave)
	prof := ProfileLoop(loop, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := Prepare(loop, PolicyMDC, cfg.NumClusters)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ModuloSchedule(plan, ScheduleOptions{Arch: cfg, Heuristic: PrefClus, Profile: prof}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulator(b *testing.B) {
	bench, err := mediabench.Get("gsmdec")
	if err != nil {
		b.Fatal(err)
	}
	loop := bench.Loops[0]
	cfg := DefaultConfig().WithInterleave(bench.Interleave)
	plan, err := Prepare(loop, PolicyMDC, cfg.NumClusters)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := ModuloSchedule(plan, ScheduleOptions{Arch: cfg, Heuristic: PrefClus, Profile: ProfileLoop(loop, cfg)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(sc, benchSimOptions); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLayouts compares the word-interleaved and replicated cache
// layouts (§2.3) under MDC and DDGT on one chain-heavy benchmark.
func BenchmarkLayouts(b *testing.B) {
	bench, err := mediabench.Get("pgpdec")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, layout := range []arch.Layout{arch.LayoutWordInterleaved, arch.LayoutReplicated} {
			cfg := arch.Default().WithInterleave(bench.Interleave).WithLayout(layout)
			mdc, err := experiments.RunLoopContext(context.Background(), bench.Loops[0], cfg, experiments.MDCPrefClus, benchSimOptions)
			if err != nil {
				b.Fatal(err)
			}
			dt, err := experiments.RunLoopContext(context.Background(), bench.Loops[0], cfg, experiments.DDGTPrefClus, benchSimOptions)
			if err != nil {
				b.Fatal(err)
			}
			ratio := float64(dt.Stats.Cycles()) / float64(mdc.Stats.Cycles())
			if layout == arch.LayoutReplicated {
				b.ReportMetric(ratio, "ddgt_vs_mdc_replicated")
			} else {
				b.ReportMetric(ratio, "ddgt_vs_mdc_interleaved")
			}
		}
	}
}

// BenchmarkAblationOrdering compares the two scheduler priority orders
// (Rau height vs swing-style slack) over the suite's main loops.
func BenchmarkAblationOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var hII, sII int
		for _, bench := range mediabench.Figures() {
			cfg := DefaultConfig().WithInterleave(bench.Interleave)
			loop := bench.Loops[0]
			plan, err := Prepare(loop, PolicyMDC, cfg.NumClusters)
			if err != nil {
				b.Fatal(err)
			}
			prof := ProfileLoop(loop, cfg)
			h, err := ScheduleWith(context.Background(), "prefclus", plan, ScheduleOptions{Arch: cfg, Profile: prof})
			if err != nil {
				b.Fatal(err)
			}
			s, err := ScheduleWith(context.Background(), "prefclus-slack", plan, ScheduleOptions{Arch: cfg, Profile: prof})
			if err != nil {
				b.Fatal(err)
			}
			hII += h.II
			sII += s.II
		}
		b.ReportMetric(float64(hII), "total_ii_height")
		b.ReportMetric(float64(sII), "total_ii_slack")
	}
}
