package vliwcache

import (
	"context"
	"testing"
)

// The tests in this file exercise the deprecated pre-v1 spellings on
// purpose: the shims must keep compiling and behaving identically until
// they are removed. Everything else in the repo uses the functional
// options (`make check-deprecated` enforces that).

// TestExecuteShimEquivalence pins the ExecOptions struct shim to the
// functional-options path bit for bit.
func TestExecuteShimEquivalence(t *testing.T) {
	legacy, err := Execute(exampleLoop(), ExecOptions{
		Arch:      DefaultConfig(),
		Policy:    PolicyDDGT,
		Heuristic: MinComs,
	})
	if err != nil {
		t.Fatal(err)
	}
	modern, err := Execute(exampleLoop(),
		WithArch(DefaultConfig()),
		WithPolicy(PolicyDDGT),
		WithHeuristic(MinComs))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Stats.Cycles() != modern.Stats.Cycles() || legacy.Schedule.II != modern.Schedule.II {
		t.Errorf("legacy shim (%d cycles, II=%d) differs from options (%d cycles, II=%d)",
			legacy.Stats.Cycles(), legacy.Schedule.II, modern.Stats.Cycles(), modern.Schedule.II)
	}
}

// TestExecOptionsZeroArchDefaults pins the shim's one divergence from
// blind field assignment: a zero-value Arch keeps the DefaultConfig()
// baseline instead of selecting a zero-cluster machine (which divided by
// zero in address mapping, so no working caller ever relied on it).
func TestExecOptionsZeroArchDefaults(t *testing.T) {
	legacy, err := Execute(exampleLoop(), ExecOptions{
		Policy:    PolicyMDC,
		Heuristic: PrefClus,
	})
	if err != nil {
		t.Fatal(err)
	}
	modern, err := Execute(exampleLoop(),
		WithPolicy(PolicyMDC),
		WithHeuristic(PrefClus))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Stats.Cycles() != modern.Stats.Cycles() || legacy.Schedule.II != modern.Schedule.II {
		t.Errorf("zero-Arch shim (%d cycles, II=%d) differs from defaults (%d cycles, II=%d)",
			legacy.Stats.Cycles(), legacy.Schedule.II, modern.Stats.Cycles(), modern.Schedule.II)
	}
}

// TestOrderShimEquivalence pins the deprecated Order enum spelling to
// its registry-name replacement bit for bit: ScheduleOptions.Order slack
// must produce the same schedule as the "prefclus-slack" scheduler.
func TestOrderShimEquivalence(t *testing.T) {
	loop := exampleLoop()
	cfg := DefaultConfig()
	prof := ProfileLoop(loop, cfg)
	plan, err := Prepare(loop, PolicyMDC, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := ModuloSchedule(plan, ScheduleOptions{Arch: cfg, Heuristic: PrefClus, Profile: prof, Order: OrderSlack})
	if err != nil {
		t.Fatal(err)
	}
	modern, err := ScheduleWith(context.Background(), "prefclus-slack", plan, ScheduleOptions{Arch: cfg, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.II != modern.II || legacy.Length != modern.Length {
		t.Errorf("Order shim (II=%d len=%d) differs from registry name (II=%d len=%d)",
			legacy.II, legacy.Length, modern.II, modern.Length)
	}
}

// TestExecOptionsHybridShim keeps the hybrid entry point covered under
// the struct form too.
func TestExecOptionsHybridShim(t *testing.T) {
	res, err := ExecuteHybrid(exampleLoop(), ExecOptions{
		Arch:      DefaultConfig(),
		Heuristic: PrefClus,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Policy != PolicyMDC && res.Plan.Policy != PolicyDDGT {
		t.Errorf("hybrid picked %v", res.Plan.Policy)
	}
}
