package vliwcache

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// exampleLoop builds the daxpy loop of the package documentation.
func exampleLoop() *Loop {
	b := NewBuilder("daxpy")
	b.Symbol("x", 0x10000, 1<<20)
	b.Symbol("y", 0x80000, 1<<20)
	b.Trip(1000, 1)
	a := b.Reg()
	x := b.Load("ldx", AddrExpr{Base: "x", Stride: 8, Size: 8})
	y := b.Load("ldy", AddrExpr{Base: "y", Stride: 8, Size: 8})
	m := b.Arith("mul", KindFMul, a, x)
	s := b.Arith("add", KindFAdd, m, y)
	b.Store("sty", AddrExpr{Base: "y", Stride: 8, Size: 8}, s)
	return b.Loop()
}

func TestExecutePipeline(t *testing.T) {
	for _, pol := range []Policy{PolicyFree, PolicyMDC, PolicyDDGT} {
		res, err := Execute(exampleLoop(),
			WithArch(DefaultConfig()),
			WithPolicy(pol),
			WithHeuristic(PrefClus),
			WithSimOptions(SimOptions{CheckCoherence: true}))
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Schedule.II < 1 || res.Stats.Cycles() <= 0 {
			t.Errorf("%v: II=%d cycles=%d", pol, res.Schedule.II, res.Stats.Cycles())
		}
		if err := ValidateSchedule(res.Schedule); err != nil {
			t.Errorf("%v: %v", pol, err)
		}
		if pol != PolicyFree && res.Stats.Violations != 0 {
			t.Errorf("%v: %d violations", pol, res.Stats.Violations)
		}
	}
}

func TestExecuteHybridFacade(t *testing.T) {
	res, err := ExecuteHybrid(exampleLoop(),
		WithArch(DefaultConfig()),
		WithHeuristic(MinComs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Policy != PolicyMDC && res.Plan.Policy != PolicyDDGT {
		t.Errorf("hybrid picked %v", res.Plan.Policy)
	}
}

func TestFacadeAnalyses(t *testing.T) {
	loop := exampleLoop()
	g, err := BuildDDG(loop)
	if err != nil {
		t.Fatal(err)
	}
	chains, _ := Chains(g)
	if len(chains) != 1 {
		t.Fatalf("daxpy must have one chain (store aliases the y load): %v", chains)
	}
	st := AnalyzeChains(g)
	if st.Biggest != 2 || st.MemOps != 3 {
		t.Errorf("chain stats = %+v", st)
	}
	if _, removed := Specialize(g); removed != 0 {
		t.Errorf("daxpy has no ambiguous dependences, removed %d", removed)
	}
	prof := ProfileLoop(loop, DefaultConfig())
	if prof.Preferred(0) < 0 {
		t.Error("load must have a profile")
	}
}

func TestBenchmarksFacade(t *testing.T) {
	if got := len(Benchmarks()); got != 14 {
		t.Errorf("suite = %d benchmarks, want 14", got)
	}
	bench, err := BenchmarkByName("rasta")
	if err != nil {
		t.Fatal(err)
	}
	if bench.Interleave != 4 {
		t.Errorf("rasta interleave = %d", bench.Interleave)
	}
	if _, err := BenchmarkByName("bogus"); err == nil {
		t.Error("unknown benchmark must fail")
	}
}

func TestExecuteFunctionalOptions(t *testing.T) {
	res, err := Execute(exampleLoop(),
		WithPolicy(PolicyMDC),
		WithHeuristic(PrefClus),
		WithSimOptions(SimOptions{CheckCoherence: true}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Policy != PolicyMDC || res.Stats.Violations != 0 {
		t.Errorf("options not applied: policy=%v violations=%d", res.Plan.Policy, res.Stats.Violations)
	}

	// Omitting WithArch must default to the paper's Table 2 machine.
	if res.Schedule.II < 1 {
		t.Error("default arch did not schedule")
	}
}

func TestExecuteContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteContext(ctx, exampleLoop(), WithPolicy(PolicyMDC)); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecuteContext = %v, want context.Canceled", err)
	}
	if _, err := ExecuteHybridContext(ctx, exampleLoop()); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecuteHybridContext = %v, want context.Canceled", err)
	}
}

func TestTypedErrorsFacade(t *testing.T) {
	if _, err := BenchmarkByName("bogus"); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("BenchmarkByName error %v must wrap ErrUnknownBenchmark", err)
	}
	s := NewSuite(DefaultConfig())
	if _, err := s.CellContext(context.Background(), "bogus", Variant{}); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("suite cell error %v must wrap ErrUnknownBenchmark", err)
	}

	// A grid failure carries its coordinates as a *PipelineError.
	cfg := DefaultConfig()
	cfg.FPUnits = 0
	bad := NewSuite(cfg, WithSimOptions(SimOptions{MaxIterations: 50, MaxEntries: 1}))
	_, err := bad.CellContext(context.Background(), "rasta", Variant{Policy: PolicyMDC, Heuristic: PrefClus})
	var pe *PipelineError
	if !errors.As(err, &pe) || pe.Bench != "rasta" || pe.Stage != "schedule" {
		t.Errorf("error %v must be a *PipelineError for rasta/schedule", err)
	}
}

func TestSuiteOptionsAndMetrics(t *testing.T) {
	var mu sync.Mutex
	stages := 0
	s := NewSuite(DefaultConfig(),
		WithSimOptions(SimOptions{MaxIterations: 50, MaxEntries: 1}),
		WithParallelism(2),
		WithTracer(func(TraceEvent) { mu.Lock(); stages++; mu.Unlock() }))
	if _, err := s.CellContext(context.Background(), "gsmenc", Variant{Policy: PolicyMDC, Heuristic: PrefClus}); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Workers != 2 || m.Computed != 1 || m.Submitted != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if stages == 0 {
		t.Error("tracer saw no stages")
	}
	if m.Utilization() < 0 || m.Utilization() > 1 {
		t.Errorf("utilization %f out of range", m.Utilization())
	}
}

func TestConfigFacade(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), NobalMemConfig(), NobalRegConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Error(err)
		}
	}
	s := NewSuite(DefaultConfig())
	if s == nil || len(s.Benches) != 13 {
		t.Error("suite must cover the 13 figure benchmarks")
	}
}

func TestCheckModelFacade(t *testing.T) {
	ctx := context.Background()
	for _, cfg := range ModelConfigs() {
		res, err := CheckModel(ctx, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if !res.OK() {
			t.Errorf("%s: %v", cfg.Name, res.Counterexample)
		}
	}
	// An exhausted budget degrades to the typed error plus a partial
	// result, reachable through the facade's re-exports.
	tiny := *ModelConfigs()[0]
	tiny.MaxStates = 3
	res, err := CheckModel(ctx, &tiny)
	if !errors.Is(err, ErrModelBudget) {
		t.Fatalf("tiny budget: err = %v, want ErrModelBudget", err)
	}
	var be *ModelBudgetError
	if !errors.As(err, &be) || be.States != res.States {
		t.Fatalf("budget error %+v inconsistent with partial result %+v", be, res)
	}
}
