// Transform walks the paper's worked example (Figures 3 and 5): a loop with
// two loads, two stores and an add whose memory dependences form one chain.
// It prints the original DDG, the memory dependent chains the MDC solution
// pins to a cluster, and the DDGT-transformed graph with its replicated
// stores, SYNC dependences and fabricated fake consumer.
package main

import (
	"fmt"
	"log"

	"vliwcache"
)

func main() {
	b := vliwcache.NewBuilder("figure3")
	// Distinct symbols: the affine tester proves the accesses independent,
	// so the figure's unresolved dependences are added by hand below.
	b.Symbol("A1", 0x1000, 1<<12)
	b.Symbol("A2", 0x3000, 1<<12)
	b.Symbol("A3", 0x5000, 1<<12)
	b.Symbol("A4", 0x7000, 1<<12)
	liveIn := b.Reg()
	r1 := b.Load("n1", vliwcache.AddrExpr{Base: "A1", Stride: 4, Size: 4})
	r2 := b.Load("n2", vliwcache.AddrExpr{Base: "A2", Stride: 4, Size: 4})
	b.Store("n3", vliwcache.AddrExpr{Base: "A3", Stride: 4, Size: 4}, liveIn)
	b.Store("n4", vliwcache.AddrExpr{Base: "A4", Stride: 4, Size: 4}, r1)
	b.Arith("n5", vliwcache.KindAdd, r2)
	loop := b.Loop()

	g, err := vliwcache.BuildDDG(loop)
	if err != nil {
		log.Fatal(err)
	}
	// The ambiguous dependences of Figure 3 (MA/MO/MF among n1..n4).
	g.MustAddEdge(0, 2, vliwcache.MA, 0, true) // n1 -> n3
	g.MustAddEdge(0, 3, vliwcache.MA, 0, true) // n1 -> n4 (redundant: RF n1->n4)
	g.MustAddEdge(1, 2, vliwcache.MA, 0, true) // n2 -> n3
	g.MustAddEdge(1, 3, vliwcache.MA, 0, true) // n2 -> n4
	g.MustAddEdge(2, 3, vliwcache.MO, 0, true) // n3 -> n4
	g.MustAddEdge(3, 2, vliwcache.MO, 1, true) // n4 -> n3 (loop-carried)
	g.MustAddEdge(2, 0, vliwcache.MF, 1, true) // n3 -> n1
	g.MustAddEdge(2, 1, vliwcache.MF, 1, true) // n3 -> n2

	fmt.Println("== original DDG (Figure 3) ==")
	fmt.Print(g)

	chains, _ := vliwcache.Chains(g)
	fmt.Println("\n== MDC: memory dependent chains ==")
	for i, ch := range chains {
		fmt.Printf("chain %d:", i)
		for _, id := range ch {
			fmt.Printf(" %s", loop.Ops[id].Label())
		}
		fmt.Println(" — all scheduled in the same cluster")
	}
	st := vliwcache.AnalyzeChains(g)
	fmt.Printf("CMR = %.2f, CAR = %.2f\n", st.CMR(), st.CAR())

	plan, err := vliwcache.Transform(g, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== DDGT: transformed DDG (Figure 5) ==")
	fmt.Print(plan.Graph)
	fmt.Println("\nreplica groups (instance k pinned to cluster k):")
	for orig, group := range plan.ReplicaGroups {
		fmt.Printf("  %s:", plan.Loop.Ops[orig].Label())
		for k, id := range group {
			fmt.Printf(" cl%d=%s", k, plan.Loop.Ops[id].Label())
		}
		fmt.Println()
	}
	for _, fc := range plan.FakeConsumers {
		fmt.Printf("fake consumer created: %s (reads %s's value)\n",
			plan.Loop.Ops[fc].Label(), "n1")
	}
	fmt.Printf("MA dependences eliminated: %d\n", plan.RemovedMA)
}
