// Layouts contrasts the two distributed-cache organizations the paper's
// techniques cover (§2.3): the word-interleaved cache and a multiVLIW-style
// replicated cache. The same loop is compiled under MDC and DDGT for both
// layouts; the replicated runs show DDGT's store instances updating every
// copy without touching the memory buses, while MDC broadcasts each store.
package main

import (
	"fmt"
	"log"

	"vliwcache"
)

func main() {
	b := vliwcache.NewBuilder("filter")
	b.Symbol("c", 0x100000, 1<<20)
	b.Symbol("t", 0x900000, 1<<20)
	b.Trip(4000, 1)
	coef := b.Load("coef", vliwcache.AddrExpr{Base: "t", Offset: 8, Stride: 0, Size: 4})
	x := b.Load("x", vliwcache.AddrExpr{Base: "c", Offset: -16, Stride: 16, Size: 4})
	y := b.Arith("mac", vliwcache.KindMul, coef, x)
	b.Store("out", vliwcache.AddrExpr{Base: "c", Stride: 16, Size: 4}, y)
	loop := b.Loop()

	for _, layout := range []vliwcache.Layout{
		vliwcache.LayoutWordInterleaved, vliwcache.LayoutReplicated,
	} {
		cfg := vliwcache.DefaultConfig().WithLayout(layout)
		fmt.Printf("== %v cache ==\n", layout)
		for _, pol := range []vliwcache.Policy{vliwcache.PolicyMDC, vliwcache.PolicyDDGT} {
			res, err := vliwcache.Execute(loop,
				vliwcache.WithArch(cfg),
				vliwcache.WithPolicy(pol),
				vliwcache.WithHeuristic(vliwcache.PrefClus),
				vliwcache.WithSimOptions(vliwcache.SimOptions{CheckCoherence: true}),
			)
			if err != nil {
				log.Fatalf("%v/%v: %v", layout, pol, err)
			}
			fmt.Printf("  %-5v cycles=%-8d localhit=%5.1f%%  bus transfers=%-6d violations=%d\n",
				pol, res.Stats.Cycles(), 100*res.Stats.LocalHitRatio(),
				res.Stats.BusTransfers, res.Stats.Violations)
		}
	}
	fmt.Println("\nUnder the replicated layout, DDGT needs no bus traffic at all:")
	fmt.Println("each store instance updates its own cluster's copy in place.")
}
