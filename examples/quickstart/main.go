// Quickstart: build a small loop, compile it under each coherence policy,
// and compare cycle counts and access classifications.
package main

import (
	"fmt"
	"log"

	"vliwcache"
)

func main() {
	// y[i] = a*x[i] + y[i] — two streaming loads, one store, FP arithmetic.
	// The store aliases the load of y (memory-flow at distance 0 and a
	// memory-anti dependence back), so coherence matters.
	b := vliwcache.NewBuilder("daxpy")
	b.Symbol("x", 0x10000, 1<<20)
	b.Symbol("y", 0x80000, 1<<20)
	b.Trip(20000, 1)
	a := b.Reg() // live-in scalar
	x := b.Load("ldx", vliwcache.AddrExpr{Base: "x", Stride: 8, Size: 8})
	y := b.Load("ldy", vliwcache.AddrExpr{Base: "y", Stride: 8, Size: 8})
	m := b.Arith("mul", vliwcache.KindFMul, a, x)
	s := b.Arith("add", vliwcache.KindFAdd, m, y)
	b.Store("sty", vliwcache.AddrExpr{Base: "y", Stride: 8, Size: 8}, s)
	loop := b.Loop()

	cfg := vliwcache.DefaultConfig()
	fmt.Println("machine:", cfg)
	fmt.Println()

	for _, pol := range []vliwcache.Policy{
		vliwcache.PolicyFree, vliwcache.PolicyMDC, vliwcache.PolicyDDGT,
	} {
		res, err := vliwcache.Execute(loop,
			vliwcache.WithArch(cfg),
			vliwcache.WithPolicy(pol),
			vliwcache.WithHeuristic(vliwcache.PrefClus),
			vliwcache.WithSimOptions(vliwcache.SimOptions{CheckCoherence: true}),
		)
		if err != nil {
			log.Fatalf("%v: %v", pol, err)
		}
		fmt.Printf("%-5v II=%-3d cycles=%-8d (compute %d + stall %d)\n",
			pol, res.Schedule.II, res.Stats.Cycles(),
			res.Stats.ComputeCycles, res.Stats.StallCycles)
		fmt.Printf("      local hits %.1f%%  remote %.1f%%  misses %.1f%%  violations %d\n",
			100*res.Stats.ClassRatio(vliwcache.LocalHit),
			100*(res.Stats.ClassRatio(vliwcache.RemoteHit)),
			100*(res.Stats.ClassRatio(vliwcache.LocalMiss)+res.Stats.ClassRatio(vliwcache.RemoteMiss)),
			res.Stats.Violations)
	}

	// The §6 hybrid: compile both techniques, keep the faster.
	res, err := vliwcache.ExecuteHybrid(loop,
		vliwcache.WithArch(cfg),
		vliwcache.WithHeuristic(vliwcache.PrefClus),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid picked %v: %d cycles\n", res.Plan.Policy, res.Stats.Cycles())
}
