// Mediabench runs one synthesized benchmark of the suite across the
// paper's four (policy, heuristic) variants and prints a per-loop and
// aggregate comparison. Pass a benchmark name as the first argument
// (default: pgpdec).
package main

import (
	"fmt"
	"log"
	"os"

	"vliwcache"
)

func main() {
	name := "pgpdec"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench, err := vliwcache.BenchmarkByName(name)
	if err != nil {
		log.Fatal(err)
	}
	cfg := vliwcache.DefaultConfig().WithInterleave(bench.Interleave)
	fmt.Printf("benchmark %s (interleave %dB, main data %dB)\n\n",
		bench.Name, bench.Interleave, bench.MainDataSize)

	type variant struct {
		pol vliwcache.Policy
		h   vliwcache.Heuristic
	}
	variants := []variant{
		{vliwcache.PolicyFree, vliwcache.MinComs},
		{vliwcache.PolicyMDC, vliwcache.PrefClus},
		{vliwcache.PolicyMDC, vliwcache.MinComs},
		{vliwcache.PolicyDDGT, vliwcache.PrefClus},
		{vliwcache.PolicyDDGT, vliwcache.MinComs},
	}

	var baseline int64
	for _, v := range variants {
		var total vliwcache.Stats
		fmt.Printf("%v(%v):\n", v.pol, v.h)
		for _, loop := range bench.Loops {
			res, err := vliwcache.Execute(loop,
				vliwcache.WithArch(cfg),
				vliwcache.WithPolicy(v.pol),
				vliwcache.WithHeuristic(v.h),
				vliwcache.WithSimOptions(vliwcache.SimOptions{MaxIterations: 1500}),
			)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-22s II=%-3d comms=%-3d cycles=%-9d localhit=%.1f%%\n",
				loop.Name, res.Schedule.II, res.Schedule.CommOps(),
				res.Stats.Cycles(), 100*res.Stats.LocalHitRatio())
			total.Add(res.Stats)
		}
		if v.pol == vliwcache.PolicyFree {
			baseline = total.Cycles()
		}
		norm := float64(total.Cycles()) / float64(baseline)
		fmt.Printf("  total %d cycles (%.3f of baseline), compute %d, stall %d\n\n",
			total.Cycles(), norm, total.ComputeCycles, total.StallCycles)
	}
}
