// Attraction demonstrates §5 of the paper: Attraction Buffers replicate
// remote subblocks locally, and their interaction with MDC and DDGT. The
// loop mimics epicdec's big loop — a large memory dependent chain — where
// MDC overflows the single cluster's buffer while DDGT spreads the accesses
// over all four buffers (§5.4).
package main

import (
	"fmt"
	"log"

	"vliwcache"
)

func main() {
	bench, err := vliwcache.BenchmarkByName("epicdec")
	if err != nil {
		log.Fatal(err)
	}
	loop := bench.Loops[0] // the loop with the 76-op memory dependent chain

	g, err := vliwcache.BuildDDG(loop)
	if err != nil {
		log.Fatal(err)
	}
	st := vliwcache.AnalyzeChains(g)
	fmt.Printf("loop %q: %d ops, %d memory ops, biggest chain %d (CMR %.2f)\n\n",
		loop.Name, st.Ops, st.MemOps, st.Biggest, st.CMR())

	for _, entries := range []int{0, 16, 64} {
		cfg := vliwcache.DefaultConfig().WithInterleave(bench.Interleave)
		label := "no Attraction Buffers"
		if entries > 0 {
			cfg = cfg.WithAttractionBuffers(entries)
			label = fmt.Sprintf("%d-entry 2-way Attraction Buffers", entries)
		}
		fmt.Printf("== %s ==\n", label)
		for _, pol := range []vliwcache.Policy{vliwcache.PolicyMDC, vliwcache.PolicyDDGT} {
			res, err := vliwcache.Execute(loop,
				vliwcache.WithArch(cfg),
				vliwcache.WithPolicy(pol),
				vliwcache.WithHeuristic(vliwcache.PrefClus),
				vliwcache.WithSimOptions(vliwcache.SimOptions{MaxIterations: 1000}),
			)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-5v local hit %.1f%%  AB hits %-6d stall %-8d total %d cycles\n",
				pol, 100*res.Stats.LocalHitRatio(), res.Stats.ABHits,
				res.Stats.StallCycles, res.Stats.Cycles())
		}
	}
	fmt.Println("\nWith small buffers the chained loop overflows MDC's single")
	fmt.Println("cluster buffer while DDGT uses all four (§5.4).")
}
