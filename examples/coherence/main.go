// Coherence reproduces the memory coherence problem itself (Figure 2): a
// store to X scheduled in cluster 4 races the aliased load in cluster 1.
// The store's update crosses a 2-cycle memory bus, so when X is homed in
// the load's cluster the load reads the bank before the update lands. The
// hand-built schedule is exactly the figure's; the simulator's coherence
// checker counts the resulting ordering violations. MDC and DDGT schedules
// of the same loop are then shown to be violation-free.
package main

import (
	"fmt"
	"log"

	"vliwcache"
)

func main() {
	b := vliwcache.NewBuilder("figure2")
	b.Symbol("X", 0x10000, 1<<20)
	b.Trip(4000, 1)
	val := b.Reg()
	b.Store("st", vliwcache.AddrExpr{Base: "X", Stride: 4, Size: 4}, val)
	r := b.Load("ld", vliwcache.AddrExpr{Base: "X", Stride: 4, Size: 4})
	b.Arith("use", vliwcache.KindAdd, r)
	loop := b.Loop()

	cfg := vliwcache.DefaultConfig()

	// The optimistic baseline with Figure 2's exact placement: store in
	// cluster 4 (index 3), load and its consumer in cluster 1 (index 1).
	plan, err := vliwcache.Prepare(loop, vliwcache.PolicyFree, cfg.NumClusters)
	if err != nil {
		log.Fatal(err)
	}
	sc := &vliwcache.Schedule{
		Plan:    plan,
		Arch:    cfg,
		II:      2,
		Length:  3,
		Cycle:   []int{0, 1, 2},
		Cluster: []int{3, 1, 1},
		Lat:     []int{1, 1, 1},
	}
	if err := vliwcache.ValidateSchedule(sc); err != nil {
		log.Fatal(err)
	}
	st, err := vliwcache.Simulate(sc, vliwcache.SimOptions{CheckCoherence: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FREE (Figure 2 placement): %d iterations, %d ordering violations\n",
		st.Iterations, st.Violations)
	fmt.Println("  -> the load reads stale values whenever X is homed in its cluster")

	for _, pol := range []vliwcache.Policy{vliwcache.PolicyMDC, vliwcache.PolicyDDGT} {
		res, err := vliwcache.Execute(loop,
			vliwcache.WithArch(cfg),
			vliwcache.WithPolicy(pol),
			vliwcache.WithHeuristic(vliwcache.MinComs),
			vliwcache.WithSimOptions(vliwcache.SimOptions{CheckCoherence: true}),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v: %d iterations, %d ordering violations\n",
			pol, res.Stats.Iterations, res.Stats.Violations)
	}
}
