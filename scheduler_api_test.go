package vliwcache

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// The three hand-built loops with provably optimal IIs, mirrored from
// the oracle's own fixtures: four independent adds (II 1), a two-op
// loop-carried recurrence (II 2), and a may-alias load-add-store chain
// whose store→load dependence closes a latency-3 cycle (II 3).

func agreeIndepLoop() *Loop {
	b := NewBuilder("indep4")
	for i := 0; i < 4; i++ {
		b.Arith("", KindAdd, b.Reg())
	}
	return b.Loop()
}

func agreeRecurLoop() *Loop {
	b := NewBuilder("recur2")
	x := b.Arith("f", KindAdd, b.Reg())
	y := b.Arith("g", KindAdd, x)
	loop := b.Loop()
	loop.Ops[0].Srcs = []Reg{y}
	loop.Renumber()
	if err := loop.Validate(); err != nil {
		panic(err)
	}
	return loop
}

func agreeChainLoop() *Loop {
	b := NewBuilder("chain3")
	b.Symbol("a", 0x10000, 1<<20)
	b.Symbol("p", 0x90000, 1<<20, "a")
	v := b.Load("ld", AddrExpr{Base: "a", Stride: 16, Size: 4})
	s := b.Arith("add", KindAdd, v)
	b.Store("st", AddrExpr{Base: "p", Stride: 16, Size: 4}, s)
	return b.Loop()
}

var agreementLoops = []struct {
	name   string
	build  func() *Loop
	policy Policy
}{
	{"indep4/FREE", agreeIndepLoop, PolicyFree},
	{"recur2/FREE", agreeRecurLoop, PolicyFree},
	{"chain3/MDC", agreeChainLoop, PolicyMDC},
}

// TestSchedulerAgreement: on the three known-optimal loops, every
// registered scheduler — the exact oracle included — must produce a
// schedule whose simulation yields identical Stats. The loops are small
// enough that every scheduler finds the optimum, so any divergence in
// observable behaviour is a scheduler bug, not a quality difference.
func TestSchedulerAgreement(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	for _, tc := range agreementLoops {
		t.Run(tc.name, func(t *testing.T) {
			loop := tc.build()
			prof := ProfileLoop(loop, cfg)
			plan, err := Prepare(loop, tc.policy, cfg.NumClusters)
			if err != nil {
				t.Fatal(err)
			}
			var baseline *Stats
			for _, name := range SchedulerNames() {
				sc, err := ScheduleWith(ctx, name, plan, ScheduleOptions{Arch: cfg, Profile: prof})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := ValidateSchedule(sc); err != nil {
					t.Fatalf("%s: invalid schedule: %v", name, err)
				}
				st, err := SimulateContext(ctx, sc, SimOptions{})
				if err != nil {
					t.Fatalf("%s: simulate: %v", name, err)
				}
				if baseline == nil {
					baseline = st
					continue
				}
				if !reflect.DeepEqual(baseline, st) {
					t.Errorf("%s stats diverge from %s:\n%+v\nvs\n%+v",
						name, SchedulerNames()[0], st, baseline)
				}
			}
		})
	}
}

// TestExecuteWithScheduler threads the registry through the one-call
// pipeline: WithScheduler("oracle") must run the exact scheduler.
func TestExecuteWithScheduler(t *testing.T) {
	res, err := Execute(agreeIndepLoop(), WithScheduler("oracle"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.II != 1 {
		t.Errorf("oracle II = %d, want 1", res.Schedule.II)
	}
}

// TestExecutePortfolioOfOne pins the acceptance criterion: a portfolio
// containing a single scheduler behaves exactly like selecting that
// scheduler directly.
func TestExecutePortfolioOfOne(t *testing.T) {
	one, err := Execute(agreeChainLoop(), WithPolicy(PolicyMDC), WithPortfolio("mincoms"))
	if err != nil {
		t.Fatal(err)
	}
	single, err := Execute(agreeChainLoop(), WithPolicy(PolicyMDC), WithScheduler("mincoms"))
	if err != nil {
		t.Fatal(err)
	}
	if one.Schedule.II != single.Schedule.II || one.Schedule.Length != single.Schedule.Length {
		t.Errorf("portfolio of one (II=%d len=%d) differs from single scheduler (II=%d len=%d)",
			one.Schedule.II, one.Schedule.Length, single.Schedule.II, single.Schedule.Length)
	}
	if !reflect.DeepEqual(one.Stats, single.Stats) {
		t.Errorf("portfolio-of-one stats diverge:\n%+v\nvs\n%+v", one.Stats, single.Stats)
	}
}

// TestExecutePortfolioRace races heuristics against the oracle and must
// come out at the proven optimum.
func TestExecutePortfolioRace(t *testing.T) {
	res, err := Execute(agreeRecurLoop(), WithPortfolio("prefclus", "mincoms", "oracle"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.II != 2 {
		t.Errorf("portfolio II = %d, want the optimal 2", res.Schedule.II)
	}
}

// TestScheduleWithUnknownName pins the typed error surface.
func TestScheduleWithUnknownName(t *testing.T) {
	loop := agreeIndepLoop()
	plan, err := Prepare(loop, PolicyFree, DefaultConfig().NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScheduleWith(context.Background(), "quantum", plan, ScheduleOptions{Arch: DefaultConfig()}); !errors.Is(err, ErrUnknownScheduler) {
		t.Fatalf("err = %v, want ErrUnknownScheduler", err)
	}
	if _, err := Execute(loop, WithScheduler("quantum")); !errors.Is(err, ErrUnknownScheduler) {
		t.Fatalf("Execute err = %v, want ErrUnknownScheduler", err)
	}
}
