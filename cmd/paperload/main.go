// Command paperload measures the serving tier and writes the committed
// serving baseline (BENCH_serve.json).
//
// Two scenarios run against a live paperserved node (or router):
//
//   - cell-open-warm: an open-loop Poisson stream of /v1/cell requests
//     over a pre-warmed working set. Open loop means arrivals do not
//     wait for responses, so queueing delay lands in the measured
//     latency instead of silently throttling the generator (the
//     coordinated-omission trap). Reported: p50/p95/p99 latency and
//     cache-hit ratio.
//   - cell-closed-saturation: N workers issuing back-to-back requests;
//     the reported throughput is the server's sustained capacity.
//
// Usage:
//
//	paperload -base http://127.0.0.1:8080 -out BENCH_serve.json
//	paperload -base http://127.0.0.1:8080 -rate 200 -duration 10s -workers 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"vliwcache"
)

func main() {
	var (
		base     = flag.String("base", "http://127.0.0.1:8080", "server under test (base URL)")
		rate     = flag.Float64("rate", 100, "open-loop mean arrival rate (req/s)")
		duration = flag.Duration("duration", 5*time.Second, "per-scenario run length")
		seed     = flag.Int64("seed", 1, "arrival-process seed (equal seeds replay identical schedules)")
		workers  = flag.Int("workers", 4, "closed-loop concurrency")
		out      = flag.String("out", "", "write the baseline JSON here (default: stdout)")
	)
	flag.Parse()

	targets := cellTargets()
	ctx := context.Background()

	// Warm the working set so the open-loop run measures the steady
	// state (cache-hit path), not first-touch compute.
	fmt.Fprintf(os.Stderr, "paperload: warming %d cell bodies\n", len(targets))
	warm := vliwcache.LoadConfig{
		BaseURL: *base, Targets: targets, Duration: 30 * time.Second, Workers: 2,
	}
	if _, err := warmUp(ctx, warm, len(targets)); err != nil {
		fatalf("warmup: %v", err)
	}

	fmt.Fprintf(os.Stderr, "paperload: open loop, %.0f req/s for %s\n", *rate, *duration)
	open, err := vliwcache.RunOpenLoad(ctx, "cell-open-warm", vliwcache.LoadConfig{
		BaseURL: *base, Targets: targets, Rate: *rate, Duration: *duration, Seed: *seed,
	})
	if err != nil {
		fatalf("open loop: %v", err)
	}

	fmt.Fprintf(os.Stderr, "paperload: closed loop, %d workers for %s\n", *workers, *duration)
	closed, err := vliwcache.RunClosedLoad(ctx, "cell-closed-saturation", vliwcache.LoadConfig{
		BaseURL: *base, Targets: targets, Duration: *duration, Workers: *workers,
	})
	if err != nil {
		fatalf("closed loop: %v", err)
	}

	b := &vliwcache.ServeBaseline{
		GitSHA:    gitSHA(),
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Scenarios: []vliwcache.LoadResult{*open, *closed},
	}
	if *out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b); err != nil {
			fatalf("encode: %v", err)
		}
		return
	}
	if err := b.Write(*out); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "paperload: wrote %s\n", *out)
}

// cellTargets is the measured working set: every Mediabench figure
// benchmark under both scheduling variants, as /v1/cell requests with
// the fast simulator path (the serving tier's common case).
func cellTargets() []vliwcache.LoadTarget {
	var targets []vliwcache.LoadTarget
	for _, bench := range []string{
		"epicdec", "g721dec", "g721enc", "gsmdec", "gsmenc", "jpegdec",
		"jpegenc", "mpeg2dec", "pegwitdec", "pegwitenc", "pgpdec",
		"pgpenc", "rasta",
	} {
		for _, v := range [][2]string{{"mdc", "mincoms"}, {"ddgt", "prefclus"}} {
			body := fmt.Sprintf(
				`{"bench":%q,"policy":%q,"heuristic":%q,"maxIterations":50,"fastPath":true}`,
				bench, v[0], v[1])
			targets = append(targets, vliwcache.LoadTarget{Path: "/v1/cell", Body: []byte(body)})
		}
	}
	return targets
}

// warmUp issues one closed-loop pass until every target has been
// computed at least once (bounded by the config duration).
func warmUp(ctx context.Context, cfg vliwcache.LoadConfig, want int) (*vliwcache.LoadResult, error) {
	res, err := vliwcache.RunClosedLoad(ctx, "warmup", cfg)
	if err != nil {
		return nil, err
	}
	if res.Completed < int64(want) {
		return nil, fmt.Errorf("only %d/%d targets completed in warmup window", res.Completed, want)
	}
	return res, nil
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperload: "+format+"\n", args...)
	os.Exit(1)
}
