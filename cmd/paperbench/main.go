// Command paperbench regenerates the tables and figures of the paper's
// evaluation on the synthesized Mediabench suite.
//
// Independent (benchmark, variant) cells fan out across a bounded worker
// pool; output is byte-identical to a serial run because rendering happens
// in canonical cell order after the parallel warm-up.
//
// Usage:
//
//	paperbench                       # everything, one worker per core
//	paperbench -table 3              # one table (1..5)
//	paperbench -figure 7             # one figure (6, 7 or 9)
//	paperbench -experiment nobal     # §4.2 unbalanced buses
//	paperbench -experiment epicloop  # §5.4 case study
//	paperbench -maxiters 500         # quick run (cap iterations per loop)
//	paperbench -parallel 4           # bound the worker pool (1 = serial)
//	paperbench -pool=false           # fresh machine per run (no pooling)
//	paperbench -scheduler locality   # schedule every cell with one registered scheduler
//	paperbench -portfolio prefclus,mincoms,oracle  # race schedulers, keep the best
//	paperbench -gap gap.json         # optimality-gap report (.csv = CSV, else JSON)
//	paperbench -sweep sweep.json     # canonical design-space sweep (.csv = CSV, else JSON)
//	paperbench -sweep s.json -corpus 16  # sweep with 16 generated corpus loops
//	paperbench -mc                   # exhaustively model-check the coherence substrate
//	paperbench -oracle-budget 100000 # cap the oracle's search nodes per loop
//	paperbench -chaos -seed 7        # fault injection + coherence audit
//	paperbench -cell-timeout 30s     # per-cell deadline (degraded mode)
//	paperbench -v                    # engine metrics on stderr
//	paperbench -trace ev.jsonl       # cycle-level simulation events (JSONL)
//	paperbench -metrics m.json       # engine metrics export (.csv = CSV)
//	paperbench -faults f.json        # cell-failure export (.csv = CSV)
//	paperbench -pprof localhost:6060 # live net/http/pprof server
//	paperbench -cpuprofile cpu.out   # CPU profile of the whole run
//	paperbench -memprofile heap.out  # heap profile captured at exit
//
// With -trace, every simulated run appends to one JSONL stream; the
// stream is byte-identical across runs of the same grid only under
// -parallel 1 (workers interleave events otherwise).
//
// -portfolio and -chaos are mutually exclusive: chaos mode scores every
// schedule a run produces against the coherence checker, but a portfolio
// race keeps only the winning schedule, so the losers' behaviour under
// fault injection would go unscored. Combining them is rejected with an
// error instead of silently scoring only the winner.
//
// Exit codes: 0 every cell computed cleanly; 1 degraded (some cells failed
// and were rendered as n/a, listed on stderr); 2 fatal (interrupted or a
// non-degradable error).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"sync"

	"vliwcache/internal/arch"
	"vliwcache/internal/archspace"
	"vliwcache/internal/experiments"
	"vliwcache/internal/fault"
	"vliwcache/internal/mc"
	"vliwcache/internal/obs"
	"vliwcache/internal/report"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// exportTo writes one export file, choosing CSV when the path ends in
// .csv and JSON otherwise. Export errors are reported, not fatal: the
// run's primary output already happened.
func exportTo(path string, csv, json func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: export: %v\n", err)
		return
	}
	write := json
	if strings.HasSuffix(path, ".csv") {
		write = csv
	}
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: export %s: %v\n", path, err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: export %s: %v\n", path, err)
	}
}

func main() {
	table := flag.Int("table", 0, "regenerate one table (1..5); 0 = per other flags")
	figure := flag.Int("figure", 0, "regenerate one figure (6, 7 or 9); 0 = per other flags")
	experiment := flag.String("experiment", "", "named experiment: nobal, epicloop, layouts, hybrid")
	maxIters := flag.Int64("maxiters", 0, "cap simulated iterations per loop entry (0 = full)")
	parallel := flag.Int("parallel", 0, "worker pool size; 0 = one per core, 1 = serial")
	pool := flag.Bool("pool", true, "reuse simulator machines across cells (allocation-free steady state)")
	fast := flag.Bool("fast", false, "skip dead cycles and extrapolate validated steady-state loops (bit-identical results)")
	scheduler := flag.String("scheduler", "", "schedule every cell with this registered scheduler (see -gap output for names)")
	portfolio := flag.String("portfolio", "", "comma-separated schedulers to race per cell, best schedule wins (incompatible with -chaos)")
	gapFile := flag.String("gap", "", "write the per-benchmark optimality-gap report to this file (.csv = CSV, else JSON) and exit")
	sweepFile := flag.String("sweep", "", "write the canonical design-space sweep to this file (.csv = CSV, else JSON) and exit")
	corpusN := flag.Int("corpus", 8, "generated corpus loops appended to the -sweep workloads (seed 1; 0 = benchmarks only)")
	mcMode := flag.Bool("mc", false, "exhaustively model-check the coherence substrate's canonical configurations and exit")
	oracleBudget := flag.Int64("oracle-budget", 0, "cap the oracle's search nodes per loop in the -gap report (0 = default)")
	chaos := flag.Bool("chaos", false, "inject seeded timing faults and audit coherence on every run")
	seed := flag.Int64("seed", 1, "base seed for -chaos fault injection")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell deadline; expired cells render as n/a(timeout)")
	verbose := flag.Bool("v", false, "print engine metrics (workers, cache hits, stage times) to stderr")
	traceFile := flag.String("trace", "", "write cycle-level simulation events (JSONL) to this file")
	metricsFile := flag.String("metrics", "", "export engine metrics to this file (.csv = CSV, else JSON)")
	faultsFile := flag.String("faults", "", "export cell failures to this file (.csv = CSV, else JSON)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile captured at exit to this file")
	flag.Parse()

	// Scheduler-selection validation happens before any work starts so a
	// typo fails in milliseconds, not after a grid warm-up.
	var portfolioNames []string
	if *portfolio != "" {
		for _, n := range strings.Split(*portfolio, ",") {
			if n = strings.TrimSpace(n); n != "" {
				portfolioNames = append(portfolioNames, n)
			}
		}
	}
	if *scheduler != "" && len(portfolioNames) > 0 {
		fmt.Fprintln(os.Stderr, "paperbench: -scheduler and -portfolio are mutually exclusive")
		os.Exit(2)
	}
	if len(portfolioNames) > 0 && *chaos {
		// Chaos mode scores every schedule against the coherence checker;
		// a portfolio race would leave the losing schedulers' schedules
		// unscored. Refuse instead of silently scoring only the winner.
		fmt.Fprintln(os.Stderr, "paperbench: -portfolio cannot be combined with -chaos: "+
			"fault-injection scoring would only see each race's winning schedule; "+
			"run the portfolio members separately with -scheduler instead")
		os.Exit(2)
	}
	if *scheduler != "" {
		if _, err := sched.Get(*scheduler); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(2)
		}
	}
	if len(portfolioNames) > 0 {
		if _, err := sched.NewPortfolio(portfolioNames...); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// os.Exit skips defers, so every finalizer (trace flush, exports,
	// profile capture) registers here and exit runs them in order.
	var cleanup []func()
	exit := func(code int) {
		for _, fn := range cleanup {
			fn()
		}
		stop()
		os.Exit(code)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "paperbench: pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		cleanup = append(cleanup, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memProfile != "" {
		cleanup = append(cleanup, func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: memprofile: %v\n", err)
				return
			}
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: memprofile: %v\n", err)
			}
			f.Close()
		})
	}

	// -mc is its own mode: exhaustively model-check every canonical
	// configuration of the coherence substrate and exit. Any violation or
	// exhausted budget is a nonzero exit; PASS lines report the explored
	// state space so regressions in coverage are visible too.
	if *mcMode {
		ck := mc.NewChecker()
		fmt.Printf("%-18s %-8s %10s %12s %6s %6s\n",
			"config", "verdict", "states", "transitions", "depth", "autos")
		code := 0
		for _, cfg := range mc.CanonicalConfigs() {
			res, err := ck.Check(ctx, cfg)
			verdict := "PASS"
			if !res.OK() {
				verdict = "FAIL"
				code = 1
			}
			if err != nil {
				verdict = "BUDGET"
				code = 1
			}
			fmt.Printf("%-18s %-8s %10d %12d %6d %6d\n",
				cfg.Name, verdict, res.States, res.Transitions, res.Depth, res.Automorphisms)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: mc: %s: %v\n", cfg.Name, err)
			}
			if !res.OK() {
				fmt.Fprintf(os.Stderr, "paperbench: mc: %s\n", res.Counterexample)
			}
		}
		exit(code)
	}

	// -gap is its own mode: compute the optimality-gap report over the
	// full 14-benchmark suite and exit. -scheduler narrows the heuristic
	// columns to one; the oracle always runs.
	if *gapFile != "" {
		var gopts experiments.GapOptions
		gopts.NodeBudget = *oracleBudget
		if *scheduler != "" {
			gopts.Schedulers = []string{*scheduler}
		}
		rows, err := experiments.GapReport(ctx, arch.Default(), nil, gopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: gap: %v\n", err)
			exit(2)
		}
		exportTo(*gapFile,
			func(w io.Writer) error { return report.WriteGapCSV(w, rows) },
			func(w io.Writer) error { return report.WriteGapJSON(w, rows) })
		closed := 0
		for _, r := range rows {
			if r.Status == report.GapClosed {
				closed++
			}
		}
		fmt.Fprintf(os.Stderr, "paperbench: gap: %d loops, %d closed by the oracle\n", len(rows), closed)
		exit(0)
	}

	// -sweep is its own mode: run the canonical archspace grid over the
	// benchmark suite plus the generated corpus and export the rows.
	// -maxiters and -parallel tune the run; the defaults reproduce the
	// committed SWEEP_report byte for byte.
	if *sweepFile != "" {
		points := archspace.Canonical().Points()
		workloads, err := experiments.SweepWorkloadsWithCorpus(1, *corpusN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: sweep: %v\n", err)
			exit(2)
		}
		sopts := experiments.CanonicalSweepOptions()
		if *maxIters > 0 {
			sopts.Sim.MaxIterations = *maxIters
		}
		sopts.Parallelism = *parallel
		rows, err := experiments.Sweep(ctx, points, workloads, sopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: sweep: %v\n", err)
			exit(2)
		}
		exportTo(*sweepFile,
			func(w io.Writer) error { return report.WriteSweepCSV(w, rows) },
			func(w io.Writer) error { return report.WriteSweepJSON(w, rows) })
		fmt.Fprintf(os.Stderr, "paperbench: sweep: %d rows (%d points × %d workloads), %d distinct substrates\n",
			len(rows), len(points), len(workloads), archspace.DistinctSubstrates(points))
		exit(0)
	}

	opts := sim.Options{MaxIterations: *maxIters}
	if *chaos {
		opts.CheckCoherence = true
		opts.NewFaults = fault.Seeded(*seed, fault.DefaultConfig())
		fmt.Fprintf(os.Stderr, "paperbench: chaos mode, seed %d\n", *seed)
	}

	// Failures from every suite — including the ones Nobal, Layouts and
	// Hybrid build internally — funnel through the shared hook.
	var (
		failMu   sync.Mutex
		failures []*experiments.CellFailure
	)
	suiteOpts := []experiments.Option{
		experiments.WithSimOptions(opts),
		experiments.WithParallelism(*parallel),
	}
	if *fast {
		suiteOpts = append(suiteOpts, experiments.WithFastPath())
	}
	if *scheduler != "" {
		suiteOpts = append(suiteOpts, experiments.WithScheduler(*scheduler))
	}
	if len(portfolioNames) > 0 {
		suiteOpts = append(suiteOpts, experiments.WithPortfolio(portfolioNames...))
	}
	if *pool {
		// Size the pool like the worker pool: 0 lets it default to one
		// machine per core. Results are byte-identical either way; -pool
		// only changes how much the simulator allocates.
		suiteOpts = append(suiteOpts, experiments.WithMachinePool(*parallel))
	}
	if *chaos || *cellTimeout > 0 {
		suiteOpts = append(suiteOpts,
			experiments.WithDegraded(),
			experiments.WithFailureHook(func(f *experiments.CellFailure) {
				failMu.Lock()
				failures = append(failures, f)
				failMu.Unlock()
			}))
	}
	if *cellTimeout > 0 {
		suiteOpts = append(suiteOpts, experiments.WithCellTimeout(*cellTimeout))
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(2)
		}
		sink := obs.NewJSONL(f)
		suiteOpts = append(suiteOpts, experiments.WithObserver(experiments.Observer{
			NewTracer: func(bench, loop string, v experiments.Variant) obs.Tracer { return sink },
		}))
		cleanup = append(cleanup, func() {
			if err := sink.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: trace: %v\n", err)
			}
			f.Close()
		})
	}

	all := *table == 0 && *figure == 0 && *experiment == ""
	fatal := false
	run := func(name string, f func() (string, error)) {
		if fatal {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			fatal = true
			return
		}
		fmt.Println(out)
	}

	var (
		suites     []*experiments.Suite
		suiteNames []string
	)
	newSuite := func(name string, cfg arch.Config) *experiments.Suite {
		s := experiments.NewSuite(cfg, suiteOpts...)
		suites = append(suites, s)
		suiteNames = append(suiteNames, name)
		return s
	}
	var base, ab *experiments.Suite
	suite := func() *experiments.Suite {
		if base == nil {
			base = newSuite("default", arch.Default())
		}
		return base
	}
	abSuite := func() *experiments.Suite {
		if ab == nil {
			ab = newSuite("ab16", arch.Default().WithAttractionBuffers(16))
		}
		return ab
	}

	if all || *table == 1 {
		fmt.Println(experiments.Table1())
	}
	if all || *table == 2 {
		fmt.Println(experiments.Table2(arch.Default()))
	}
	if all || *figure == 6 {
		run("figure 6", func() (string, error) { return experiments.Figure6(ctx, suite()) })
	}
	if all || *figure == 7 {
		run("figure 7", func() (string, error) { return experiments.Figure7(ctx, suite()) })
	}
	if all || *table == 3 {
		fmt.Println(experiments.Table3())
	}
	if all || *table == 4 {
		run("table 4", func() (string, error) { return experiments.Table4(ctx, suite()) })
	}
	if all || *experiment == "nobal" {
		run("nobal", func() (string, error) { return experiments.Nobal(ctx, opts, suiteOpts...) })
	}
	if all || *figure == 9 {
		run("figure 9", func() (string, error) { return experiments.Figure9(ctx, abSuite()) })
	}
	if all || *experiment == "epicloop" {
		run("epicloop", func() (string, error) { return experiments.EpicLoop(ctx, opts, suiteOpts...) })
	}
	if all || *experiment == "layouts" {
		run("layouts", func() (string, error) { return experiments.Layouts(ctx, opts, suiteOpts...) })
	}
	if all || *experiment == "hybrid" {
		run("hybrid", func() (string, error) { return experiments.Hybrid(ctx, opts, suiteOpts...) })
	}
	if all || *table == 5 {
		fmt.Println(experiments.Table5())
	}

	if *verbose {
		for _, s := range suites {
			fmt.Fprint(os.Stderr, s.Metrics().String())
		}
	}

	failMu.Lock()
	failed := failures
	failMu.Unlock()
	for _, f := range failed {
		fmt.Fprintf(os.Stderr, "paperbench: cell %s/%s failed: %s: %v\n", f.Bench, f.Variant, f.Reason, f.Err)
	}

	if *metricsFile != "" {
		recs := make([]report.MetricsRecord, len(suites))
		for i, s := range suites {
			recs[i] = report.MetricsRecord{Name: suiteNames[i], Metrics: s.Metrics()}
		}
		exportTo(*metricsFile,
			func(w io.Writer) error { return report.WriteMetricsCSV(w, recs) },
			func(w io.Writer) error { return report.WriteMetricsJSON(w, recs) })
	}
	if *faultsFile != "" {
		recs := make([]report.FaultRecord, len(failed))
		for i, f := range failed {
			recs[i] = report.FaultRecord{
				Name:   f.Bench + "/" + f.Variant.String(),
				Reason: f.Reason,
				Err:    fmt.Sprint(f.Err),
			}
		}
		exportTo(*faultsFile,
			func(w io.Writer) error { return report.WriteFaultsCSV(w, recs) },
			func(w io.Writer) error { return report.WriteFaultsJSON(w, recs) })
	}

	switch {
	case fatal || ctx.Err() != nil:
		// Interrupted (or a non-degradable error): report how far the grid
		// got before dying so a partial run is still interpretable.
		var computed, cached, canceled int64
		for _, s := range suites {
			m := s.Metrics()
			computed += m.Computed
			cached += m.CacheHits
			canceled += m.Canceled
		}
		fmt.Fprintf(os.Stderr, "paperbench: aborted: %d cells computed, %d cache hits, %d canceled, %d failed\n",
			computed, cached, canceled, len(failed))
		exit(2)
	case len(failed) > 0:
		fmt.Fprintf(os.Stderr, "paperbench: degraded: %d cells rendered as n/a\n", len(failed))
		exit(1)
	}
	exit(0)
}
