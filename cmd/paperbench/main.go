// Command paperbench regenerates the tables and figures of the paper's
// evaluation on the synthesized Mediabench suite.
//
// Usage:
//
//	paperbench                       # everything
//	paperbench -table 3              # one table (1..5)
//	paperbench -figure 7             # one figure (6, 7 or 9)
//	paperbench -experiment nobal     # §4.2 unbalanced buses
//	paperbench -experiment epicloop  # §5.4 case study
//	paperbench -maxiters 500         # quick run (cap iterations per loop)
package main

import (
	"flag"
	"fmt"
	"os"

	"vliwcache/internal/arch"
	"vliwcache/internal/experiments"
	"vliwcache/internal/sim"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1..5); 0 = per other flags")
	figure := flag.Int("figure", 0, "regenerate one figure (6, 7 or 9); 0 = per other flags")
	experiment := flag.String("experiment", "", "named experiment: nobal, epicloop, layouts, hybrid")
	maxIters := flag.Int64("maxiters", 0, "cap simulated iterations per loop entry (0 = full)")
	flag.Parse()

	opts := sim.Options{MaxIterations: *maxIters}

	all := *table == 0 && *figure == 0 && *experiment == ""
	run := func(name string, f func() (string, error)) {
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	var base, ab *experiments.Suite
	suite := func() *experiments.Suite {
		if base == nil {
			base = experiments.NewSuite(arch.Default())
			base.SimOptions = opts
		}
		return base
	}
	abSuite := func() *experiments.Suite {
		if ab == nil {
			ab = experiments.NewSuite(arch.Default().WithAttractionBuffers(16))
			ab.SimOptions = opts
		}
		return ab
	}

	if all || *table == 1 {
		fmt.Println(experiments.Table1())
	}
	if all || *table == 2 {
		fmt.Println(experiments.Table2(arch.Default()))
	}
	if all || *figure == 6 {
		run("figure 6", func() (string, error) { return experiments.Figure6(suite()) })
	}
	if all || *figure == 7 {
		run("figure 7", func() (string, error) { return experiments.Figure7(suite()) })
	}
	if all || *table == 3 {
		fmt.Println(experiments.Table3())
	}
	if all || *table == 4 {
		run("table 4", func() (string, error) { return experiments.Table4(suite()) })
	}
	if all || *experiment == "nobal" {
		run("nobal", func() (string, error) { return experiments.Nobal(opts) })
	}
	if all || *figure == 9 {
		run("figure 9", func() (string, error) { return experiments.Figure9(abSuite()) })
	}
	if all || *experiment == "epicloop" {
		run("epicloop", func() (string, error) { return experiments.EpicLoop(opts) })
	}
	if all || *experiment == "layouts" {
		run("layouts", func() (string, error) { return experiments.Layouts(opts) })
	}
	if all || *experiment == "hybrid" {
		run("hybrid", func() (string, error) { return experiments.Hybrid(opts) })
	}
	if all || *table == 5 {
		fmt.Println(experiments.Table5())
	}
}
