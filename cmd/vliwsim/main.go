// Command vliwsim compiles and simulates one synthesized Mediabench
// benchmark (or all of them) on the word-interleaved cache clustered VLIW
// processor under a chosen coherence policy and cluster heuristic.
//
// Usage:
//
//	vliwsim -list
//	vliwsim -bench pgpdec -policy mdc -heuristic prefclus
//	vliwsim -bench epicdec -policy ddgt -ab 16 -coherence
//	vliwsim -bench all -policy hybrid -maxiters 1000
//	vliwsim -bench rasta -policy mdc -config nobal+reg -schedule
//	vliwsim -loopfile myloop.json -policy ddgt -coherence
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vliwcache"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available benchmarks and exit")
		bench     = flag.String("bench", "pgpdec", "benchmark name, or 'all'")
		policy    = flag.String("policy", "mdc", "coherence policy: free, mdc, ddgt, hybrid")
		heuristic = flag.String("heuristic", "prefclus", "cluster heuristic: prefclus, mincoms")
		config    = flag.String("config", "default", "architecture: default, nobal+mem, nobal+reg")
		ab        = flag.Int("ab", 0, "attraction buffer entries per cluster (0 = off)")
		loopfile  = flag.String("loopfile", "", "run a single loop from a JSON file instead of a benchmark")
		layout    = flag.String("layout", "interleaved", "cache layout: interleaved, replicated")
		maxIters  = flag.Int64("maxiters", 0, "cap simulated iterations per loop entry (0 = full)")
		coherence = flag.Bool("coherence", false, "run the memory ordering checker")
		schedule  = flag.Bool("schedule", false, "print the modulo schedules")
		rep       = flag.Bool("report", false, "print detailed per-loop reports (II decomposition, utilization)")
		words     = flag.Bool("words", false, "print the kernels as VLIW instruction words")
		tracePath = flag.String("trace", "", "write a CSV access trace to this file (single -loopfile runs only)")
	)
	flag.Parse()

	if *list {
		for _, b := range vliwcache.Benchmarks() {
			fmt.Printf("%-10s interleave %dB, main data %dB (%.1f%%), inputs %s / %s\n",
				b.Name, b.Interleave, b.MainDataSize, b.MainDataPct, b.ProfileInput, b.ExecInput)
		}
		return
	}

	var cfg vliwcache.Config
	switch strings.ToLower(*config) {
	case "default":
		cfg = vliwcache.DefaultConfig()
	case "nobal+mem":
		cfg = vliwcache.NobalMemConfig()
	case "nobal+reg":
		cfg = vliwcache.NobalRegConfig()
	default:
		fatalf("unknown -config %q", *config)
	}
	switch strings.ToLower(*layout) {
	case "interleaved":
	case "replicated":
		cfg = cfg.WithLayout(vliwcache.LayoutReplicated)
	default:
		fatalf("unknown -layout %q", *layout)
	}
	if *ab > 0 {
		cfg = cfg.WithAttractionBuffers(*ab)
	}

	var pol vliwcache.Policy
	hybrid := false
	switch strings.ToLower(*policy) {
	case "free":
		pol = vliwcache.PolicyFree
	case "mdc":
		pol = vliwcache.PolicyMDC
	case "ddgt":
		pol = vliwcache.PolicyDDGT
	case "hybrid":
		hybrid = true
	default:
		fatalf("unknown -policy %q", *policy)
	}

	var h vliwcache.Heuristic
	switch strings.ToLower(*heuristic) {
	case "prefclus":
		h = vliwcache.PrefClus
	case "mincoms":
		h = vliwcache.MinComs
	default:
		fatalf("unknown -heuristic %q", *heuristic)
	}

	if *loopfile != "" {
		runLoopFile(*loopfile, cfg, pol, hybrid, h, *maxIters, *coherence, *schedule, *rep, *tracePath)
		return
	}
	if *tracePath != "" {
		fatalf("-trace requires -loopfile")
	}

	var benches []*vliwcache.Benchmark
	if *bench == "all" {
		benches = vliwcache.Benchmarks()
	} else {
		b, err := vliwcache.BenchmarkByName(*bench)
		if err != nil {
			fatalf("%v", err)
		}
		benches = append(benches, b)
	}

	for _, b := range benches {
		bcfg := cfg.WithInterleave(b.Interleave)
		fmt.Printf("== %s  (%s) ==\n", b.Name, bcfg)
		var total vliwcache.Stats
		for _, loop := range b.Loops {
			opts := []vliwcache.Option{
				vliwcache.WithArch(bcfg),
				vliwcache.WithPolicy(pol),
				vliwcache.WithHeuristic(h),
				vliwcache.WithSimOptions(vliwcache.SimOptions{
					MaxIterations:  *maxIters,
					CheckCoherence: *coherence,
				}),
			}
			run := vliwcache.Execute
			if hybrid {
				run = vliwcache.ExecuteHybrid
			}
			res, err := run(loop, opts...)
			if err != nil {
				fatalf("%s/%s: %v", b.Name, loop.Name, err)
			}
			polName := pol.String()
			if hybrid {
				polName = "HYBRID->" + res.Plan.Policy.String()
			}
			fmt.Printf("  %-24s %-14s II=%-4d comms=%-3d %s\n",
				loop.Name, polName, res.Schedule.II, res.Schedule.CommOps(), res.Stats)
			if *schedule {
				fmt.Print(res.Schedule)
			}
			if *rep {
				fmt.Println(vliwcache.Report(res.Schedule, res.Stats))
			}
			if *words {
				fmt.Println(res.Schedule.Words())
			}
			total.Add(res.Stats)
		}
		fmt.Printf("  TOTAL: %s\n\n", &total)
	}
}

// runLoopFile loads one loop from a JSON file and runs the full pipeline.
func runLoopFile(path string, cfg vliwcache.Config, pol vliwcache.Policy, hybrid bool,
	h vliwcache.Heuristic, maxIters int64, coherence, schedule, rep bool, tracePath string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	loop, err := vliwcache.DecodeLoopJSON(data)
	if err != nil {
		fatalf("%v", err)
	}
	simOpts := vliwcache.SimOptions{MaxIterations: maxIters, CheckCoherence: coherence}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		simOpts.Trace = f
	}
	opts := []vliwcache.Option{
		vliwcache.WithArch(cfg),
		vliwcache.WithPolicy(pol),
		vliwcache.WithHeuristic(h),
		vliwcache.WithSimOptions(simOpts),
	}
	run := vliwcache.Execute
	if hybrid {
		run = vliwcache.ExecuteHybrid
	}
	res, err := run(loop, opts...)
	if err != nil {
		fatalf("%s: %v", loop.Name, err)
	}
	polName := res.Plan.Policy.String()
	if hybrid {
		polName = "HYBRID->" + polName
	}
	fmt.Printf("%s (%s)\n", loop.Name, cfg)
	fmt.Printf("  %-14s II=%-4d comms=%-3d %s\n", polName, res.Schedule.II, res.Schedule.CommOps(), res.Stats)
	if schedule {
		fmt.Print(res.Schedule)
	}
	if rep {
		fmt.Println(vliwcache.Report(res.Schedule, res.Stats))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vliwsim: "+format+"\n", args...)
	os.Exit(1)
}
