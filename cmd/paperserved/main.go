// Command paperserved serves the scheduling + simulation pipeline over
// HTTP: POST /v1/schedule and /v1/simulate run one loop through the full
// pipeline, POST /v1/suite computes a benchmark × variant grid, and
// GET /v1/benchmarks lists the synthesized Mediabench suite. Responses
// are cached by content address (identical requests are byte-identical
// and computed once), concurrent identical requests coalesce onto one
// computation, and a bounded admission queue sheds overload with 429.
//
// The same binary runs every node of a distributed serving tier:
//
//   - default: a standalone worker (the original single-node service)
//   - -peers: a cluster worker that also polls its peers' /healthz and
//     reports the view in its own /healthz
//   - -workers: a router that decomposes suite/sweep requests into
//     cells, routes each cell to the worker owning its content address
//     on a consistent-hash ring, and runs the async job API
//     (POST /v1/jobs, GET /v1/jobs/{id}, .../artifacts, .../events)
//
// Usage:
//
//	paperserved -addr 127.0.0.1:8080
//	paperserved -addr :0 -portfile /tmp/paperserved.port
//	paperserved -cache-bytes 134217728 -queue 128 -parallel 8
//	paperserved -addr :0 -peers http://127.0.0.1:8081
//	paperserved -addr :8080 -workers http://127.0.0.1:8081,http://127.0.0.1:8082
//
// SIGINT/SIGTERM begin a graceful drain: new compute requests get a
// typed 503, in-flight requests (and running jobs, on a router) finish
// within the -drain timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vliwcache"
	"vliwcache/internal/fsx"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)")
		cacheBytes = flag.Int64("cache-bytes", 0, "result cache byte budget (0 = default 64 MiB)")
		queue      = flag.Int("queue", 64, "admitted requests that may wait for a worker beyond those executing")
		parallel   = flag.Int("parallel", 0, "compute workers (0 = GOMAXPROCS)")
		deadline   = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		drain      = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		portfile   = flag.String("portfile", "", "write the bound address to this file once listening")
		workers    = flag.String("workers", "", "run as a router over these worker base URLs (comma-separated)")
		peers      = flag.String("peers", "", "peer worker base URLs to poll (comma-separated; marks this node a cluster worker)")
		jobPar     = flag.Int("job-parallel", 0, "router: cells computed concurrently per job (0 = default)")
	)
	flag.Parse()

	if *workers != "" && *peers != "" {
		fatalf("-workers and -peers are mutually exclusive (a node is a router or a worker)")
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	if *portfile != "" {
		// Atomic so a smoke test polling the portfile never reads a
		// partially written address.
		if err := fsx.WriteFileAtomic(*portfile, []byte(l.Addr().String()), 0o644); err != nil {
			fatalf("writing portfile: %v", err)
		}
	}

	if *workers != "" {
		runRouter(l, splitURLs(*workers), *drain, *jobPar)
		return
	}
	runWorker(l, workerConfig{
		cacheBytes: *cacheBytes,
		queue:      *queue,
		parallel:   *parallel,
		deadline:   *deadline,
		drain:      *drain,
		peers:      splitURLs(*peers),
	})
}

func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	return urls
}

type workerConfig struct {
	cacheBytes int64
	queue      int
	parallel   int
	deadline   time.Duration
	drain      time.Duration
	peers      []string
}

func runWorker(l net.Listener, cfg workerConfig) {
	opts := []vliwcache.ServerOption{
		vliwcache.WithCacheBytes(cfg.cacheBytes),
		vliwcache.WithQueueDepth(cfg.queue),
		vliwcache.WithServerParallelism(cfg.parallel),
		vliwcache.WithServerDeadline(cfg.deadline),
		vliwcache.WithDrainTimeout(cfg.drain),
	}
	pollCtx, stopPoll := context.WithCancel(context.Background())
	defer stopPoll()
	if len(cfg.peers) > 0 {
		ps := vliwcache.NewPeerSet(cfg.peers, nil)
		go ps.Run(pollCtx, 0)
		opts = append(opts,
			vliwcache.WithRole("worker"),
			vliwcache.WithPeerView(ps.Snapshot),
		)
	}
	srv := vliwcache.NewServer(opts...)
	fmt.Fprintf(os.Stderr, "paperserved listening on %s\n", l.Addr())

	drained := onShutdown(func() error { return srv.Shutdown(context.Background()) })
	if err := srv.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	waitDrained(drained)
}

func runRouter(l net.Listener, workerURLs []string, drain time.Duration, jobPar int) {
	opts := []vliwcache.RouterOption{
		vliwcache.WithWorkers(workerURLs...),
		vliwcache.WithRouterDrainTimeout(drain),
	}
	if jobPar > 0 {
		opts = append(opts, vliwcache.WithJobParallelism(jobPar))
	}
	rt := vliwcache.NewRouter(opts...)
	fmt.Fprintf(os.Stderr, "paperserved router listening on %s (%d workers)\n",
		l.Addr(), len(workerURLs))

	drained := onShutdown(func() error { return rt.Shutdown(context.Background()) })
	if err := rt.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	waitDrained(drained)
}

// onShutdown arranges a graceful drain on SIGINT/SIGTERM.
func onShutdown(shutdown func() error) <-chan error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan error, 1)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "paperserved: %v, draining\n", s)
		drained <- shutdown()
	}()
	return drained
}

func waitDrained(drained <-chan error) {
	if err := <-drained; err != nil {
		fatalf("drain: %v", err)
	}
	fmt.Fprintln(os.Stderr, "paperserved: drained")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperserved: "+format+"\n", args...)
	os.Exit(1)
}
