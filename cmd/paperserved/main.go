// Command paperserved serves the scheduling + simulation pipeline over
// HTTP: POST /v1/schedule and /v1/simulate run one loop through the full
// pipeline, POST /v1/suite computes a benchmark × variant grid, and
// GET /v1/benchmarks lists the synthesized Mediabench suite. Responses
// are cached by content address (identical requests are byte-identical
// and computed once), concurrent identical requests coalesce onto one
// computation, and a bounded admission queue sheds overload with 429.
//
// Usage:
//
//	paperserved -addr 127.0.0.1:8080
//	paperserved -addr :0 -portfile /tmp/paperserved.port
//	paperserved -cache-bytes 134217728 -queue 128 -parallel 8
//
// SIGINT/SIGTERM begin a graceful drain: new compute requests get a
// typed 503, in-flight requests finish within the -drain timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vliwcache"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)")
		cacheBytes = flag.Int64("cache-bytes", 0, "result cache byte budget (0 = default 64 MiB)")
		queue      = flag.Int("queue", 64, "admitted requests that may wait for a worker beyond those executing")
		parallel   = flag.Int("parallel", 0, "compute workers (0 = GOMAXPROCS)")
		deadline   = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		drain      = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		portfile   = flag.String("portfile", "", "write the bound address to this file once listening")
	)
	flag.Parse()

	srv := vliwcache.NewServer(
		vliwcache.WithCacheBytes(*cacheBytes),
		vliwcache.WithQueueDepth(*queue),
		vliwcache.WithServerParallelism(*parallel),
		vliwcache.WithServerDeadline(*deadline),
		vliwcache.WithDrainTimeout(*drain),
	)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(l.Addr().String()), 0o644); err != nil {
			fatalf("writing portfile: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "paperserved listening on %s\n", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan error, 1)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "paperserved: %v, draining\n", s)
		drained <- srv.Shutdown(context.Background())
	}()

	if err := srv.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	if err := <-drained; err != nil {
		fatalf("drain: %v", err)
	}
	fmt.Fprintln(os.Stderr, "paperserved: drained")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperserved: "+format+"\n", args...)
	os.Exit(1)
}
