package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// clusterSuiteBody is the smoke job: the full benchmark suite (benches
// omitted = every figure benchmark) under both scheduling variants,
// capped small enough to stay cheap on one core.
const clusterSuiteBody = `{"variants":[{"policy":"mdc","heuristic":"mincoms"},{"policy":"ddgt","heuristic":"prefclus"}],"maxIterations":50,"fastPath":true}`

// node is one running paperserved process.
type node struct {
	cmd    *exec.Cmd
	stderr *bytes.Buffer
	base   string
}

func startNode(t *testing.T, bin, dir, name string, extra ...string) *node {
	t.Helper()
	portfile := filepath.Join(dir, name+".port")
	args := append([]string{"-addr", "127.0.0.1:0", "-portfile", portfile}, extra...)
	var stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	addr, err := waitForPortfile(portfile, 15*time.Second)
	if err != nil {
		t.Fatalf("%s: %v\nstderr: %s", name, err, stderr.Bytes())
	}
	return &node{cmd: cmd, stderr: &stderr, base: "http://" + addr}
}

// drain SIGTERMs the node and requires a clean exit with the drain
// message on stderr.
func (n *node) drain(t *testing.T, name string) {
	t.Helper()
	if err := n.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("%s: signal: %v", name, err)
	}
	waited := make(chan error, 1)
	go func() { waited <- n.cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Errorf("%s: exit after SIGTERM: %v\nstderr: %s", name, err, n.stderr.Bytes())
		}
	case <-time.After(15 * time.Second):
		t.Errorf("%s did not exit within 15s of SIGTERM", name)
		return
	}
	if !strings.Contains(n.stderr.String(), "drained") {
		t.Errorf("%s: drain message missing from stderr: %s", name, n.stderr.Bytes())
	}
}

// TestClusterSmoke is the distributed end-to-end smoke `make
// cluster-smoke` runs: build the real binary, start a router and two
// peer-aware workers on ephemeral ports, run the full suite through the
// async job API, and byte-diff the artifact against the committed
// single-node golden — the sharded tier must be invisible in the bytes.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster-smoke builds and runs three processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "paperserved")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	w1 := startNode(t, bin, dir, "w1", "-parallel", "1")
	w2 := startNode(t, bin, dir, "w2", "-parallel", "1", "-peers", w1.base)
	rt := startNode(t, bin, dir, "router", "-workers", w1.base+","+w2.base, "-job-parallel", "2")

	// The committed golden is the single-node sync /v1/suite response;
	// -update regenerates it from worker 1 alone.
	golden := filepath.Join("testdata", "suite_response.golden.json")
	single := postOK(t, w1.base+"/v1/suite", []byte(clusterSuiteBody))
	if *update {
		if err := os.WriteFile(golden, single, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(single, want) {
		t.Errorf("single-node suite drifted from golden (%d vs %d bytes); rerun with -update if intended",
			len(single), len(want))
	}

	// Async job through the router: submit, poll to done, fetch artifact.
	id, status := submitJob(t, rt.base, `{"suite":`+clusterSuiteBody+`}`)
	if status.State != "queued" && status.State != "running" && status.State != "done" {
		t.Fatalf("submit state = %q", status.State)
	}
	final := pollJob(t, rt.base, id, 120*time.Second)
	if final.State != "done" {
		t.Fatalf("job %s = %q (error %q)", id, final.State, final.Error)
	}
	if final.CellsDegraded != 0 {
		t.Errorf("healthy cluster degraded %d cells", final.CellsDegraded)
	}

	artifact := getOK(t, rt.base+"/v1/jobs/"+id+"/artifacts")
	if !bytes.Equal(artifact, want) {
		t.Errorf("cluster artifact differs from single-node golden (%d vs %d bytes)",
			len(artifact), len(want))
	}

	// The cluster surfaces are live: router healthz names its role and
	// both peers; the peer-aware worker reports its role.
	h := getOK(t, rt.base+"/healthz")
	if !strings.Contains(string(h), `"role":"router"`) {
		t.Errorf("router healthz = %s", h)
	}
	h = getOK(t, w2.base+"/healthz")
	if !strings.Contains(string(h), `"role":"worker"`) {
		t.Errorf("worker healthz = %s", h)
	}

	// Clean drain, router first (it stops routing before workers go).
	rt.drain(t, "router")
	w2.drain(t, "w2")
	w1.drain(t, "w1")
}

type jobStatus struct {
	ID            string `json:"id"`
	State         string `json:"state"`
	CellsTotal    int    `json:"cellsTotal"`
	CellsDone     int    `json:"cellsDone"`
	CellsDegraded int    `json:"cellsDegraded"`
	Error         string `json:"error"`
}

func submitJob(t *testing.T, base, body string) (string, jobStatus) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", resp.StatusCode, data)
	}
	var st jobStatus
	if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
		t.Fatalf("submit response %q: %v", data, err)
	}
	return st.ID, st
}

func pollJob(t *testing.T, base, id string, timeout time.Duration) jobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		data := getOK(t, base+"/v1/jobs/"+id)
		var st jobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("status %q: %v", data, err)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
	return jobStatus{}
}

func getOK(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d (%s)", url, resp.StatusCode, data)
	}
	return data
}
