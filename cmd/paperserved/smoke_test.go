package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the serve-smoke golden response")

// TestServeSmoke is the end-to-end smoke: build the real binary, start
// it on an ephemeral port, POST the committed golden request, diff the
// response against the committed golden bytes, and verify a clean
// SIGTERM drain. `make serve-smoke` runs exactly this.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve-smoke builds and runs the binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "paperserved")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	portfile := filepath.Join(dir, "port")
	var stderr bytes.Buffer
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-portfile", portfile, "-parallel", "2")
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer cmd.Process.Kill()

	addr, err := waitForPortfile(portfile, 15*time.Second)
	if err != nil {
		t.Fatalf("%v\nstderr: %s", err, stderr.Bytes())
	}
	base := "http://" + addr

	reqBody, err := os.ReadFile(filepath.Join("testdata", "schedule_request.json"))
	if err != nil {
		t.Fatal(err)
	}
	got := postOK(t, base+"/v1/schedule", reqBody)

	golden := filepath.Join("testdata", "schedule_response.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response drifted from golden:\n got: %s\nwant: %s", got, want)
	}

	// The same request again must be a byte-identical cache hit.
	if again := postOK(t, base+"/v1/schedule", reqBody); !bytes.Equal(again, got) {
		t.Error("repeat request served different bytes")
	}

	// Liveness surface answers.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hbody), `"status":"ok"`) {
		t.Errorf("healthz = %d (%s)", hresp.StatusCode, hbody)
	}

	// Graceful drain: SIGTERM, clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Errorf("exit after SIGTERM: %v\nstderr: %s", err, stderr.Bytes())
		}
	case <-time.After(15 * time.Second):
		t.Error("binary did not exit within 15s of SIGTERM")
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Errorf("drain message missing from stderr: %s", stderr.Bytes())
	}
}

func waitForPortfile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
			return string(bytes.TrimSpace(data)), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("portfile %s did not appear within %v", path, timeout)
}

func postOK(t *testing.T, url string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d (%s)", url, resp.StatusCode, data)
	}
	return data
}
