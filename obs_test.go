package vliwcache

import (
	"bytes"
	"context"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/experiments"
	"vliwcache/internal/fault"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/obs"
	"vliwcache/internal/sim"
)

// traceLoop returns the loop the tracing tests run: the first gsmdec
// loop, the same substrate the simulator benchmarks use.
func traceLoop(t testing.TB) *Loop {
	t.Helper()
	b, err := mediabench.Get("gsmdec")
	if err != nil {
		t.Fatal(err)
	}
	return b.Loops[0]
}

func runTraced(t testing.TB, v experiments.Variant, opts sim.Options) *sim.Stats {
	t.Helper()
	run, err := experiments.RunLoopContext(context.Background(), traceLoop(t), arch.Default(), v, opts)
	if err != nil {
		t.Fatal(err)
	}
	return run.Stats
}

// The event stream must reconcile exactly with the aggregate statistics:
// the tracer observes the same bookkeeping sites that increment Stats, so
// any drift between the two is a bug in one of them. One MDC and one DDGT
// run cover both the plain and the replicated-store access paths.
func TestTraceReconciliation(t *testing.T) {
	for _, v := range []experiments.Variant{experiments.MDCPrefClus, experiments.DDGTPrefClus} {
		t.Run(v.String(), func(t *testing.T) {
			cnt := obs.NewCount()
			st := runTraced(t, v, sim.Options{MaxIterations: 300, MaxEntries: 1, Tracer: cnt})

			if got, want := cnt.Accesses(), st.TotalAccesses(); got != want {
				t.Errorf("access events = %d, Stats.TotalAccesses = %d", got, want)
			}
			for c := sim.Class(0); c < sim.NumClasses; c++ {
				if got, want := cnt.ByClass[int8(c)], st.Accesses[c]; got != want {
					t.Errorf("%v events = %d, Stats.Accesses = %d", c, got, want)
				}
			}
			if got, want := cnt.StallSum, st.StallCycles; got != want {
				t.Errorf("summed stall event cycles = %d, Stats.StallCycles = %d", got, want)
			}
			// Every classified access serializes at at least one bank; the
			// replicated/DDGT paths add broadcast and write-through arrivals.
			if cnt.N[obs.KindBankArrival] < cnt.N[obs.KindAccess] {
				t.Errorf("bank arrivals (%d) < accesses (%d)", cnt.N[obs.KindBankArrival], cnt.N[obs.KindAccess])
			}
			if cnt.N[obs.KindIssue] == 0 {
				t.Error("no issue events")
			}
			if cnt.N[obs.KindCoherence] != 0 {
				t.Error("coherence event without CheckCoherence")
			}
		})
	}
}

// The same reconciliation must hold with the fast path requested: a
// tracer makes the run ineligible for steady-state extrapolation (it
// falls back, counted in FastPathStats), but dead-cycle skipping stays
// on — and neither may perturb a single event or counter.
func TestTraceReconciliationFastPath(t *testing.T) {
	for _, v := range []experiments.Variant{experiments.MDCPrefClus, experiments.DDGTPrefClus} {
		t.Run(v.String(), func(t *testing.T) {
			cnt := obs.NewCount()
			st := runTraced(t, v, sim.Options{MaxIterations: 300, MaxEntries: 1, Tracer: cnt, FastPath: true})
			ref := runTraced(t, v, sim.Options{MaxIterations: 300, MaxEntries: 1})

			if *st != *ref {
				t.Errorf("fast-path stats diverge from plain run:\nfast: %+v\nref:  %+v", *st, *ref)
			}
			if got, want := cnt.Accesses(), st.TotalAccesses(); got != want {
				t.Errorf("access events = %d, Stats.TotalAccesses = %d", got, want)
			}
			for c := sim.Class(0); c < sim.NumClasses; c++ {
				if got, want := cnt.ByClass[int8(c)], st.Accesses[c]; got != want {
					t.Errorf("%v events = %d, Stats.Accesses = %d", c, got, want)
				}
			}
			if got, want := cnt.StallSum, st.StallCycles; got != want {
				t.Errorf("summed stall event cycles = %d, Stats.StallCycles = %d", got, want)
			}
		})
	}
}

func TestTraceCoherenceEvent(t *testing.T) {
	ring := obs.NewRing(4)
	st := runTraced(t, experiments.MDCPrefClus,
		sim.Options{MaxIterations: 60, MaxEntries: 1, CheckCoherence: true, Tracer: ring})
	var found bool
	for _, e := range ring.Events() {
		if e.Kind == obs.KindCoherence {
			found = true
			if e.Arg != st.Violations {
				t.Errorf("coherence event Arg = %d, Stats.Violations = %d", e.Arg, st.Violations)
			}
		}
	}
	if !found {
		t.Error("CheckCoherence run emitted no coherence event (or it fell out of the ring)")
	}
}

// jsonlTrace captures one MDC + one DDGT run into a single JSONL stream,
// mirroring what paperbench -trace produces for a two-cell grid.
func jsonlTrace(t testing.TB, opts sim.Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	opts.Tracer = sink
	for _, v := range []experiments.Variant{experiments.MDCPrefClus, experiments.DDGTPrefClus} {
		runTraced(t, v, opts)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Every event field derives from simulation state, so equal inputs — and
// equal fault seeds in chaos mode — must produce byte-identical traces.
func TestTraceGoldenByteIdentical(t *testing.T) {
	opts := sim.Options{MaxIterations: 120, MaxEntries: 1}
	a, b := jsonlTrace(t, opts), jsonlTrace(t, opts)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Error("equal runs produced different trace bytes")
	}

	chaos := opts
	chaos.CheckCoherence = true
	chaos.NewFaults = fault.Seeded(7, fault.DefaultConfig())
	c1, c2 := jsonlTrace(t, chaos), jsonlTrace(t, chaos)
	if !bytes.Equal(c1, c2) {
		t.Error("equal fault seeds produced different trace bytes")
	}
	if bytes.Equal(a, c1) {
		t.Error("chaos trace is identical to the fault-free trace; faults not traced?")
	}

	// The fast path must not move a byte: with a tracer installed it
	// falls back to dead-cycle skipping only, and skipped cycles are by
	// construction event-free — so the JSONL streams (and the chaos
	// fault logs embedded in them) must be identical to the slow path's.
	fastOpts := opts
	fastOpts.FastPath = true
	if fa := jsonlTrace(t, fastOpts); !bytes.Equal(a, fa) {
		t.Error("fast-path trace differs from slow-path trace")
	}
	fastChaos := chaos
	fastChaos.FastPath = true
	if fc := jsonlTrace(t, fastChaos); !bytes.Equal(c1, fc) {
		t.Error("fast-path chaos trace differs from slow-path chaos trace")
	}
}
