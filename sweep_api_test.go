package vliwcache

import (
	"bytes"
	"context"
	"testing"
)

// TestSweepFacade drives the design-space exports end to end: a corpus
// workload swept over a small grid through both spellings (RunSweep with
// options, Sweep with explicit points), with identical rows and a valid
// export.
func TestSweepFacade(t *testing.T) {
	loops, err := LoopCorpus(3, 2, DefaultCorpusParams())
	if err != nil {
		t.Fatal(err)
	}
	env := DefaultCorpusEnvelope()
	for _, l := range loops {
		if err := CheckCorpusEnvelope(l, env); err != nil {
			t.Fatalf("%s escaped the envelope: %v", l.Name, err)
		}
	}
	workloads := []SweepWorkload{{Name: "corpus3", Source: "corpus", Loops: loops}}

	grid := ArchSpace{Base: DefaultConfig(), NumClusters: []int{2, 4}}
	if n := DistinctSubstrates(grid.Points()); n != 2 {
		t.Fatalf("DistinctSubstrates = %d, want 2", n)
	}
	opts := SweepOptions{Sim: SimOptions{MaxIterations: 64}, FastPath: true, Parallelism: 1}
	direct, err := Sweep(context.Background(), grid.Points(), workloads, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaOptions, err := RunSweep(context.Background(), workloads,
		WithArchGrid(grid),
		WithSimOptions(SimOptions{MaxIterations: 64}),
		WithFastPath(),
		WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != 2 || len(viaOptions) != 2 {
		t.Fatalf("row counts = %d direct, %d via options; want 2", len(direct), len(viaOptions))
	}
	for i := range direct {
		if direct[i] != viaOptions[i] {
			t.Errorf("row %d differs between spellings:\n direct: %+v\n option: %+v", i, direct[i], viaOptions[i])
		}
		if direct[i].Arch != ArchPointName(grid.Points()[i].Config) {
			t.Errorf("row %d arch = %q, want %q", i, direct[i].Arch, ArchPointName(grid.Points()[i].Config))
		}
		if direct[i].Cycles <= 0 {
			t.Errorf("row %d ran zero cycles: %+v", i, direct[i])
		}
	}

	var jsonBuf, csvBuf bytes.Buffer
	if err := WriteSweepJSON(&jsonBuf, direct); err != nil {
		t.Fatal(err)
	}
	if err := WriteSweepCSV(&csvBuf, direct); err != nil {
		t.Fatal(err)
	}
	if jsonBuf.Len() == 0 || csvBuf.Len() == 0 {
		t.Error("empty sweep exports")
	}
}

// TestCanonicalSweepSurface checks the canonical grid and workloads meet
// the committed sweep's contract without running it.
func TestCanonicalSweepSurface(t *testing.T) {
	grid := CanonicalArchSpace()
	points := grid.Points()
	if len(points) != 12 {
		t.Fatalf("canonical grid has %d points, want 12", len(points))
	}
	workloads, err := CanonicalSweepWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(workloads) != 22 {
		t.Fatalf("canonical workloads = %d, want 22 (14 benchmarks + 8 corpus loops)", len(workloads))
	}
	if opts := CanonicalSweepOptions(); !opts.FastPath {
		t.Error("canonical sweep must use the fast path")
	}
}
